// Fixed-point Q-format arithmetic (paper §V numeric contract).
#include "man/fixed/qformat.h"

#include <gtest/gtest.h>

#include <cmath>

namespace man::fixed {
namespace {

TEST(QFormat, PaperDefaultFormats) {
  const QFormat w8 = QFormat::weight8();
  EXPECT_EQ(w8.total_bits(), 8);
  EXPECT_EQ(w8.frac_bits(), 6);
  EXPECT_EQ(w8.max_raw(), 127);
  EXPECT_EQ(w8.min_raw(), -127);  // symmetric range
  EXPECT_NEAR(w8.max_value(), 127.0 / 64.0, 1e-12);
  EXPECT_NEAR(w8.resolution(), 1.0 / 64.0, 1e-12);

  const QFormat w12 = QFormat::weight12();
  EXPECT_EQ(w12.total_bits(), 12);
  EXPECT_EQ(w12.frac_bits(), 10);
  EXPECT_EQ(w12.max_raw(), 2047);

  EXPECT_EQ(QFormat::input8().max_raw(), 255);
}

TEST(QFormat, RejectsBadParameters) {
  EXPECT_THROW(QFormat(1, 0), std::invalid_argument);
  EXPECT_THROW(QFormat(32, 0), std::invalid_argument);
  EXPECT_THROW(QFormat(8, 8), std::invalid_argument);
  EXPECT_THROW(QFormat(8, -1), std::invalid_argument);
}

TEST(QFormat, QuantizeRoundsToNearest) {
  const QFormat fmt(8, 6);  // step 1/64
  EXPECT_EQ(fmt.quantize(0.0), 0);
  EXPECT_EQ(fmt.quantize(1.0 / 64.0), 1);
  EXPECT_EQ(fmt.quantize(1.4 / 64.0), 1);
  EXPECT_EQ(fmt.quantize(1.6 / 64.0), 2);
  EXPECT_EQ(fmt.quantize(-1.6 / 64.0), -2);
  // Half away from zero.
  EXPECT_EQ(fmt.quantize(1.5 / 64.0), 2);
  EXPECT_EQ(fmt.quantize(-1.5 / 64.0), -2);
}

TEST(QFormat, QuantizeSaturates) {
  const QFormat fmt(8, 6);
  EXPECT_EQ(fmt.quantize(100.0), 127);
  EXPECT_EQ(fmt.quantize(-100.0), -127);
  EXPECT_EQ(fmt.quantize(std::nan("")), 0);
}

TEST(QFormat, RoundTripIsIdentityOnGrid) {
  const QFormat fmt(8, 6);
  for (int raw = -127; raw <= 127; ++raw) {
    const double value = fmt.dequantize(raw);
    EXPECT_EQ(fmt.quantize(value), raw);
    EXPECT_EQ(fmt.round_trip(value), value);
  }
}

TEST(QFormat, RoundTripErrorBoundedByHalfStep) {
  const QFormat fmt(12, 10);
  for (double v = -1.9; v <= 1.9; v += 0.0137) {
    EXPECT_LE(std::abs(fmt.round_trip(v) - v), fmt.resolution() / 2 + 1e-12);
  }
}

TEST(QFormat, SaturateClampsWideValues) {
  const QFormat fmt(8, 6);
  EXPECT_EQ(fmt.saturate(1000), 127);
  EXPECT_EQ(fmt.saturate(-1000), -127);
  EXPECT_EQ(fmt.saturate(55), 55);
}

TEST(QFormat, ToStringDescribesFormat) {
  EXPECT_EQ(QFormat(8, 6).to_string(), "Q1.6 (8b)");
  EXPECT_EQ(QFormat(12, 10).to_string(), "Q1.10 (12b)");
}

TEST(RescaleProduct, ShiftsWithRounding) {
  const QFormat a(8, 6), b(9, 8);
  const QFormat target(16, 8);
  // product frac = 14, target frac = 8 -> shift right 6 w/ rounding.
  EXPECT_EQ(rescale_product(64, a, b, target), 1);    // 64 >> 6 = 1
  EXPECT_EQ(rescale_product(95, a, b, target), 1);    // round down (95 < 96)
  EXPECT_EQ(rescale_product(96, a, b, target), 2);    // round to nearest (up)
  EXPECT_EQ(rescale_product(-96, a, b, target), -2);  // symmetric
}

TEST(RescaleProduct, SaturatesAtTargetRange) {
  const QFormat a(8, 6), b(9, 8);
  const QFormat target(8, 0);
  EXPECT_EQ(rescale_product(1LL << 40, a, b, target), target.max_raw());
  EXPECT_EQ(rescale_product(-(1LL << 40), a, b, target), target.min_raw());
}

TEST(RescaleProduct, UpshiftWhenTargetFinner) {
  const QFormat a(4, 0), b(4, 0);
  const QFormat target(16, 4);
  EXPECT_EQ(rescale_product(3, a, b, target), 48);  // 3 << 4
}

}  // namespace
}  // namespace man::fixed
