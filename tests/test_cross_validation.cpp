// Cross-validation of independent implementations. The library
// contains two separately written ASM datapaths — the per-neuron
// reference model (man::core::Neuron / AsmMultiplier, scalar, built on
// plan()) and the compiled vectorized engine (man::engine::
// FixedNetwork, precompiled select/shift schedules). They share no
// multiplication code, so bit-agreement between them is strong
// evidence both implement the paper's datapath correctly.
#include <gtest/gtest.h>

#include "man/core/cshm_unit.h"
#include "man/core/neuron.h"
#include "man/engine/fixed_network.h"
#include "man/nn/constraint_projection.h"
#include "man/nn/dense.h"
#include "man/util/rng.h"

namespace {

using man::core::AlphabetSet;
using man::core::AsmMultiplier;
using man::core::CshmUnit;
using man::core::QuartetLayout;
using man::core::WeightConstraint;

// The scalar ASM multiplier and the CSHM unit agree for every
// representable weight and a sweep of inputs, across ladder sets and
// both paper bit widths.
class MultiplierAgreement
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MultiplierAgreement, ScalarVsCshmVsNative) {
  const auto [bits, n_alphabets] = GetParam();
  const QuartetLayout layout(bits);
  const AlphabetSet set =
      AlphabetSet::first_n(static_cast<std::size_t>(n_alphabets));
  const AsmMultiplier scalar(layout, set);
  CshmUnit cshm(layout, set, 4);
  const WeightConstraint wc(layout, set);

  man::util::Rng rng(2024);
  std::vector<int> weights;
  for (int i = 0; i < 64; ++i) {
    const auto& rep = wc.representable();
    const int mag =
        rep[static_cast<std::size_t>(rng.next_below(rep.size()))];
    weights.push_back(rng.next_bool() ? mag : -mag);
  }
  for (int trial = 0; trial < 8; ++trial) {
    const auto input = static_cast<std::int64_t>(rng.next_in(-255, 255));
    const auto products = cshm.process_column(input, weights);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      const std::int64_t native =
          static_cast<std::int64_t>(weights[i]) * input;
      EXPECT_EQ(products[i], native);
      EXPECT_EQ(scalar.multiply(weights[i], input), native);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BitsTimesLadder, MultiplierAgreement,
    ::testing::Combine(::testing::Values(8, 12),
                       ::testing::Values(1, 2, 4, 8)));

// The engine's dense layer agrees bit-for-bit with the per-neuron
// reference model evaluating the same row of quantized weights.
TEST(CrossValidation, EngineDenseMatchesNeuronModel) {
  man::util::Rng rng(7);
  const int in = 24, out = 6;
  man::nn::Network net;
  auto& dense = net.add<man::nn::Dense>(in, out);
  dense.init_xavier(rng);

  const man::nn::QuantSpec spec = man::nn::QuantSpec::bits8();
  const AlphabetSet set = AlphabetSet::two();
  const man::nn::ProjectionPlan plan(spec, set, 1);
  plan.project_network(net);

  // Engine path.
  man::engine::FixedNetwork engine(
      net, spec, man::engine::LayerAlphabetPlan::uniform_asm(1, set));
  std::vector<float> pixels(in);
  for (float& p : pixels) p = static_cast<float>(rng.next_double());
  const auto engine_raw = engine.forward_raw(pixels);

  // Reference path: per-neuron evaluation with the scalar model.
  const auto& wfmt = spec.weight_format;
  const auto& afmt = spec.activation_format;
  std::vector<std::int32_t> inputs_raw;
  inputs_raw.reserve(pixels.size());
  for (float p : pixels) {
    inputs_raw.push_back(afmt.quantize(static_cast<double>(p)));
  }
  const AsmMultiplier scalar(QuartetLayout(wfmt.total_bits()), set);
  for (int o = 0; o < out; ++o) {
    const int bias_shift = wfmt.frac_bits() + afmt.frac_bits();
    const double scaled_bias =
        static_cast<double>(dense.biases()[static_cast<std::size_t>(o)]) *
        std::pow(2.0, bias_shift);
    std::int64_t acc = static_cast<std::int64_t>(
        scaled_bias >= 0 ? scaled_bias + 0.5 : scaled_bias - 0.5);
    for (int i = 0; i < in; ++i) {
      const float w =
          dense.weights()[static_cast<std::size_t>(o) * in + i];
      const std::int32_t w_raw = wfmt.quantize(static_cast<double>(w));
      acc += scalar.multiply(w_raw, inputs_raw[static_cast<std::size_t>(i)]);
    }
    EXPECT_EQ(engine_raw[static_cast<std::size_t>(o)], acc) << "neuron " << o;
  }
}

// The float activation LUT (engine) and the float activation function
// (training) agree to LUT resolution — the engine cannot silently use
// a different nonlinearity than training did.
TEST(CrossValidation, LutTracksTrainingActivation) {
  const man::fixed::QFormat acc(30, 14);
  const man::fixed::QFormat out = man::fixed::QFormat::input8();
  for (auto kind : {man::core::ActivationKind::kSigmoid,
                    man::core::ActivationKind::kTanh}) {
    const man::core::FixedActivationLut lut(kind, acc, out, 10);
    for (double x = -7.5; x <= 7.5; x += 0.37) {
      EXPECT_NEAR(lut.apply(x), man::core::activate(kind, x), 0.01)
          << man::core::to_string(kind) << " at " << x;
    }
  }
}

}  // namespace
