// Loopback integration tests for the epoll HTTP front-end: the
// acceptance property (HTTP responses bit-identical to the in-process
// typed submit for digit- and face-shaped engines, across every
// registered kernel backend, under mixed interleaved traffic), the
// wire status mapping (400/404/405/413/429/431/503/504), keep-alive
// pipelining, abrupt disconnects, idle reaping and admission control.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "man/backend/kernel_backend.h"
#include "man/core/alphabet_set.h"
#include "man/engine/fixed_network.h"
#include "man/nn/activation_layer.h"
#include "man/nn/constraint_projection.h"
#include "man/nn/dense.h"
#include "man/serve/http/http_client.h"
#include "man/serve/http/http_server.h"
#include "man/serve/inference_server.h"
#include "man/util/rng.h"

namespace man::serve::http {
namespace {

using namespace std::chrono_literals;
using man::core::AlphabetSet;
using man::engine::FixedNetwork;
using man::engine::LayerAlphabetPlan;
using man::nn::ActivationLayer;
using man::nn::Dense;
using man::nn::Network;
using man::nn::ProjectionPlan;
using man::nn::QuantSpec;

FixedNetwork make_engine(std::uint64_t seed, int in, int hidden, int out) {
  man::util::Rng rng(seed);
  Network net;
  net.add<Dense>(in, hidden).init_xavier(rng);
  net.add<ActivationLayer>(man::core::ActivationKind::kSigmoid);
  net.add<Dense>(hidden, out).init_xavier(rng);
  const QuantSpec spec = QuantSpec::bits8();
  const AlphabetSet set = AlphabetSet::man();
  const ProjectionPlan projection(spec, set, net.num_weight_layers());
  projection.project_network(net);
  return FixedNetwork(
      net, spec, LayerAlphabetPlan::uniform_asm(net.num_weight_layers(), set));
}

std::vector<float> random_samples(std::size_t count, std::size_t sample_size,
                                  std::uint64_t seed) {
  man::util::Rng rng(seed);
  std::vector<float> pixels(count * sample_size);
  for (float& p : pixels) p = static_cast<float>(rng.next_double());
  return pixels;
}

std::vector<std::int64_t> sequential_raw(const FixedNetwork& engine,
                                         std::span<const float> pixels) {
  const std::size_t count = pixels.size() / engine.input_size();
  std::vector<std::int64_t> raw(count * engine.output_size());
  auto stats = engine.make_stats();
  auto scratch = engine.make_scratch();
  for (std::size_t i = 0; i < count; ++i) {
    engine.infer_into(
        pixels.subspan(i * engine.input_size(), engine.input_size()),
        std::span<std::int64_t>(raw).subspan(i * engine.output_size(),
                                             engine.output_size()),
        stats, scratch);
  }
  return raw;
}

/// Extracts the "raw":[...] array from a response body.
std::vector<std::int64_t> parse_raw(const std::string& body) {
  std::vector<std::int64_t> raw;
  const std::size_t key = body.find("\"raw\":[");
  if (key == std::string::npos) return raw;
  const char* cursor = body.c_str() + key + 7;
  while (*cursor != ']' && *cursor != '\0') {
    char* end = nullptr;
    raw.push_back(std::strtoll(cursor, &end, 10));
    cursor = *end == ',' ? end + 1 : end;
  }
  return raw;
}

bool body_has_status(const std::string& body, std::string_view name) {
  return body.find("\"status\":\"" + std::string(name) + "\"") !=
         std::string::npos;
}

std::string binary_payload(const std::vector<float>& pixels) {
  std::string body(pixels.size() * sizeof(float), '\0');
  std::memcpy(body.data(), pixels.data(), body.size());
  return body;
}

/// A digit-shaped and a face-shaped engine behind one front-end.
struct Fixture {
  FixedNetwork digit;
  FixedNetwork face;
  InferenceServer digit_server;
  InferenceServer face_server;
  HttpServer server;

  explicit Fixture(ServeConfig config = fast_config(),
                   HttpServerConfig http = {})
      : digit(make_engine(11, 16, 12, 10)),
        face(make_engine(22, 24, 10, 2)),
        digit_server(digit, config),
        face_server(face, config),
        server(std::move(http)) {
    server.add_model("digit", digit_server);
    server.add_model("face", face_server);
    server.start();
  }

  static ServeConfig fast_config() {
    ServeConfig config;
    config.max_wait = 500us;
    return config;
  }

  HttpClient client() const { return HttpClient("127.0.0.1", server.port()); }
};

TEST(HttpServer, HealthMetricsAndRouting) {
  Fixture fixture;
  HttpClient client = fixture.client();

  const HttpResponse health = client.request("GET", "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_TRUE(body_has_status(health.body, "ok"));
  EXPECT_TRUE(health.keep_alive);

  const HttpResponse metrics = client.request("GET", "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("\"requests\":"), std::string::npos);

  EXPECT_EQ(client.request("GET", "/nope").status, 404);
  EXPECT_EQ(client.request("POST", "/healthz").status, 404);
  EXPECT_EQ(client.request("DELETE", "/healthz").status, 405);
  EXPECT_EQ(
      client
          .infer("cats", std::vector<float>(
                             fixture.digit.input_size(), 0.5f))
          .status,
      404);

  const HttpServer::Metrics snapshot = fixture.server.metrics();
  EXPECT_EQ(snapshot.connections_accepted, 1u);
  EXPECT_EQ(snapshot.requests, 6u);
  EXPECT_GE(snapshot.not_found, 3u);
}

// The acceptance property: every accepted HTTP response is
// bit-identical to the in-process path (itself pinned to sequential
// infer_into), for both engines, on every registered backend, with
// JSON and binary bodies interleaved from concurrent connections.
TEST(HttpServer, BitIdenticalAcrossBackendsAndModels) {
  for (const auto* backend : man::backend::all_backends()) {
    ServeConfig config;
    config.max_wait = 200us;
    config.backend = backend->kind();
    Fixture fixture(config);

    constexpr int kClients = 3;
    constexpr int kRequestsPerClient = 8;
    std::vector<std::thread> clients;
    std::vector<std::string> failures(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        HttpClient client = fixture.client();
        for (int i = 0; i < kRequestsPerClient; ++i) {
          const bool use_digit = (c + i) % 2 == 0;
          const FixedNetwork& engine =
              use_digit ? fixture.digit : fixture.face;
          const std::size_t count = 1 + (i % 3);
          const auto pixels = random_samples(
              count, engine.input_size(),
              static_cast<std::uint64_t>(1000 + c * 100 + i));
          const char* model = use_digit ? "digit" : "face";
          const HttpResponse response =
              i % 2 == 0 ? client.infer(model, pixels)
                         : client.request(
                               "POST",
                               std::string("/v1/infer/") + model,
                               binary_payload(pixels),
                               "application/octet-stream");
          if (response.status != 200) {
            failures[c] = "status " + std::to_string(response.status) +
                          ": " + response.body;
            return;
          }
          if (parse_raw(response.body) != sequential_raw(engine, pixels)) {
            failures[c] = "raw mismatch on " + std::string(model);
            return;
          }
        }
      });
    }
    for (auto& thread : clients) thread.join();
    for (int c = 0; c < kClients; ++c) {
      EXPECT_EQ(failures[c], "") << "backend " << backend->name()
                                 << " client " << c;
    }
    const HttpServer::Metrics snapshot = fixture.server.metrics();
    EXPECT_EQ(snapshot.responses_ok,
              static_cast<std::uint64_t>(kClients * kRequestsPerClient))
        << backend->name();
    EXPECT_GT(snapshot.latency_count, 0u) << backend->name();
  }
}

TEST(HttpServer, PayloadErrorsAnswer400AndKeepTheConnection) {
  Fixture fixture;
  HttpClient client = fixture.client();

  const HttpResponse bad_json =
      client.request("POST", "/v1/infer/digit", "{\"pixels\":oops}");
  EXPECT_EQ(bad_json.status, 400);
  EXPECT_TRUE(body_has_status(bad_json.body, "bad_request"));

  const HttpResponse no_pixels =
      client.request("POST", "/v1/infer/digit", "{}");
  EXPECT_EQ(no_pixels.status, 400);

  // Ragged payload decodes fine but is rejected by the typed submit.
  const HttpResponse ragged = client.infer(
      "digit",
      std::vector<float>(fixture.digit.input_size() + 1, 0.25f));
  EXPECT_EQ(ragged.status, 400);
  EXPECT_TRUE(body_has_status(ragged.body, "bad_request"));

  const HttpResponse bad_binary = client.request(
      "POST", "/v1/infer/digit", "abc", "application/octet-stream");
  EXPECT_EQ(bad_binary.status, 400);

  // The connection survived all four errors.
  EXPECT_EQ(client.request("GET", "/healthz").status, 200);
  EXPECT_GE(fixture.server.metrics().bad_requests, 4u);
}

TEST(HttpServer, OversizedBodyRejected413) {
  HttpServerConfig http;
  http.limits.max_body_bytes = 256;
  Fixture fixture(Fixture::fast_config(), http);
  HttpClient client = fixture.client();

  const HttpResponse response = client.request(
      "POST", "/v1/infer/digit", std::string(512, 'x'));
  EXPECT_EQ(response.status, 413);
  EXPECT_FALSE(response.keep_alive);
  // Framing is unknown after a parser error: the server closes.
  EXPECT_THROW((void)client.request("GET", "/healthz"), std::runtime_error);
  EXPECT_GE(fixture.server.metrics().parse_errors, 1u);
}

TEST(HttpServer, OversizedHeadersRejected431) {
  HttpServerConfig http;
  http.limits.max_header_bytes = 128;
  Fixture fixture(Fixture::fast_config(), http);
  HttpClient client = fixture.client();
  const HttpResponse response = client.request(
      "GET", "/healthz", {}, "application/json",
      {"X-Big: " + std::string(400, 'a')});
  EXPECT_EQ(response.status, 431);
  EXPECT_FALSE(response.keep_alive);
}

TEST(HttpServer, MalformedRequestRejectedAndClosed) {
  Fixture fixture;
  HttpClient client = fixture.client();
  client.send_raw("THIS IS NOT HTTP\r\n\r\n");
  const HttpResponse response = client.read_response();
  EXPECT_EQ(response.status, 400);
  EXPECT_FALSE(response.keep_alive);
}

TEST(HttpServer, KeepAlivePipelining) {
  Fixture fixture;
  HttpClient client = fixture.client();
  const auto pixels =
      random_samples(1, fixture.digit.input_size(), 77);
  const auto expected = sequential_raw(fixture.digit, pixels);

  // Three requests in one burst; responses must come back in order.
  std::string burst = HttpClient::frame("GET", "/healthz");
  burst += HttpClient::frame("POST", "/v1/infer/digit",
                             binary_payload(pixels),
                             "application/octet-stream");
  burst += HttpClient::frame("GET", "/metrics");
  client.send_raw(burst);

  const HttpResponse first = client.read_response();
  EXPECT_EQ(first.status, 200);
  EXPECT_TRUE(body_has_status(first.body, "ok"));
  const HttpResponse second = client.read_response();
  EXPECT_EQ(second.status, 200);
  EXPECT_EQ(parse_raw(second.body), expected);
  const HttpResponse third = client.read_response();
  EXPECT_EQ(third.status, 200);
  EXPECT_NE(third.body.find("\"responses_ok\":"), std::string::npos);
}

// Admission control: a request that can never fit the bounded queue
// is shed immediately with 429 + Retry-After.
TEST(HttpServer, OverloadShedsWith429RetryAfter) {
  ServeConfig config;
  config.max_batch = 2;
  config.queue_capacity = 2;
  config.max_wait = 500us;
  Fixture fixture(config);
  HttpClient client = fixture.client();

  const auto pixels =
      random_samples(8, fixture.digit.input_size(), 88);
  const HttpResponse response = client.request(
      "POST", "/v1/infer/digit", binary_payload(pixels),
      "application/octet-stream");
  EXPECT_EQ(response.status, 429);
  EXPECT_TRUE(body_has_status(response.body, "rejected_overload"));
  const std::string* retry_after = response.find_header("Retry-After");
  ASSERT_NE(retry_after, nullptr);
  EXPECT_GE(std::atoi(retry_after->c_str()), 1);
  EXPECT_TRUE(response.keep_alive);  // shedding is per-request
  EXPECT_GE(fixture.server.metrics().shed, 1u);

  // The same connection is immediately usable for admitted work.
  const auto small = random_samples(1, fixture.digit.input_size(), 89);
  const HttpResponse ok = client.request(
      "POST", "/v1/infer/digit", binary_payload(small),
      "application/octet-stream");
  EXPECT_EQ(ok.status, 200);
  EXPECT_EQ(parse_raw(ok.body), sequential_raw(fixture.digit, small));
}

// A hard deadline that expires while queued answers 504.
TEST(HttpServer, ExpiredDeadlineAnswers504) {
  Fixture fixture;
  HttpClient client = fixture.client();
  const auto pixels =
      random_samples(1, fixture.digit.input_size(), 99);
  const HttpResponse response = client.request(
      "POST", "/v1/infer/digit", binary_payload(pixels),
      "application/octet-stream", {"X-Man-Deadline-Ms: 0"});
  EXPECT_EQ(response.status, 504);
  EXPECT_TRUE(body_has_status(response.body, "deadline_exceeded"));
  EXPECT_GE(fixture.server.metrics().deadline_exceeded, 1u);
}

TEST(HttpServer, StoppedModelAnswers503) {
  Fixture fixture;
  fixture.digit_server.shutdown();
  HttpClient client = fixture.client();
  const auto pixels =
      random_samples(1, fixture.digit.input_size(), 101);
  const HttpResponse response = client.request(
      "POST", "/v1/infer/digit", binary_payload(pixels),
      "application/octet-stream");
  EXPECT_EQ(response.status, 503);
  EXPECT_TRUE(body_has_status(response.body, "shutdown"));

  // The face model on the same front-end still serves.
  const auto face_pixels =
      random_samples(1, fixture.face.input_size(), 102);
  const HttpResponse ok = client.request(
      "POST", "/v1/infer/face", binary_payload(face_pixels),
      "application/octet-stream");
  EXPECT_EQ(ok.status, 200);
  EXPECT_EQ(parse_raw(ok.body), sequential_raw(fixture.face, face_pixels));
}

// Abrupt client disconnects — mid-request and with a response in
// flight — must not take the server down or leak connection state.
TEST(HttpServer, AbruptDisconnectsLeaveServerHealthy) {
  Fixture fixture;
  {
    HttpClient half = fixture.client();
    half.send_raw("POST /v1/infer/digit HTTP/1.1\r\nContent-Length: 400\r\n");
    // Close with the request line parsed but the body never sent.
  }
  {
    HttpClient rst = fixture.client();
    const auto pixels =
        random_samples(64, fixture.digit.input_size(), 103);
    rst.send_raw(HttpClient::frame("POST", "/v1/infer/digit",
                                   binary_payload(pixels),
                                   "application/octet-stream"));
    // Force an RST while the response may be in flight: unread data
    // plus SO_LINGER-less close is enough on loopback.
    ::shutdown(rst.fd(), SHUT_RDWR);
  }
  // The server survives and serves fresh connections.
  for (int i = 0; i < 3; ++i) {
    HttpClient client = fixture.client();
    const auto pixels =
        random_samples(1, fixture.digit.input_size(),
                       static_cast<std::uint64_t>(110 + i));
    const HttpResponse response = client.request(
        "POST", "/v1/infer/digit", binary_payload(pixels),
        "application/octet-stream");
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(parse_raw(response.body),
              sequential_raw(fixture.digit, pixels));
  }
  // Eventually every disconnected conn is reaped (no leaked state).
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (fixture.server.metrics().connections_active > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(fixture.server.metrics().connections_active, 0u);
  EXPECT_TRUE(fixture.server.running());
}

TEST(HttpServer, IdleConnectionsAreReaped) {
  HttpServerConfig http;
  http.idle_timeout = 100ms;
  Fixture fixture(Fixture::fast_config(), http);
  HttpClient client = fixture.client();
  EXPECT_EQ(client.request("GET", "/healthz").status, 200);

  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (fixture.server.metrics().idle_closed == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(20ms);
  }
  EXPECT_GE(fixture.server.metrics().idle_closed, 1u);
  EXPECT_EQ(fixture.server.metrics().connections_active, 0u);
}

// Every parsed inference request must land in exactly one outcome
// counter — the sum invariant that catches silently unmetered
// outcomes (kShutdown 503s used to fall through without a counter).
TEST(HttpServer, MetricsSumInvariantCoversEveryOutcome) {
  ServeConfig config;
  config.max_batch = 2;
  config.queue_capacity = 2;
  config.max_wait = 500us;
  Fixture fixture(config);
  HttpClient client = fixture.client();

  const auto one = random_samples(1, fixture.digit.input_size(), 301);
  EXPECT_EQ(client
                .request("POST", "/v1/infer/digit", binary_payload(one),
                         "application/octet-stream")
                .status,
            200);
  EXPECT_EQ(client
                .request("POST", "/v1/infer/cats", binary_payload(one),
                         "application/octet-stream")
                .status,
            404);
  EXPECT_EQ(client.request("POST", "/v1/infer/digit", "{}").status, 400);
  EXPECT_EQ(client
                .request("POST", "/v1/infer/digit", binary_payload(one),
                         "application/octet-stream",
                         {"X-Man-Deadline-Ms: 0"})
                .status,
            504);
  const auto big = random_samples(8, fixture.digit.input_size(), 302);
  EXPECT_EQ(client
                .request("POST", "/v1/infer/digit", binary_payload(big),
                         "application/octet-stream")
                .status,
            429);
  fixture.digit_server.shutdown();
  EXPECT_EQ(client
                .request("POST", "/v1/infer/digit", binary_payload(one),
                         "application/octet-stream")
                .status,
            503);

  const HttpServer::Metrics m = fixture.server.metrics();
  EXPECT_EQ(m.requests, 6u);
  EXPECT_EQ(m.responses_ok, 1u);
  EXPECT_EQ(m.not_found, 1u);
  EXPECT_EQ(m.bad_requests, 1u);
  EXPECT_EQ(m.deadline_exceeded, 1u);
  EXPECT_EQ(m.shed, 1u);
  EXPECT_EQ(m.shutdown, 1u);
  EXPECT_EQ(m.parse_errors, 0u);
  EXPECT_EQ(m.requests, m.responses_ok + m.shed + m.bad_requests +
                            m.not_found + m.deadline_exceeded + m.shutdown);

  // The JSON export carries the new counter too.
  const HttpResponse metrics = client.request("GET", "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("\"shutdown\":1"), std::string::npos);
}

TEST(HttpServer, ConfigValidationAndLifecycle) {
  HttpServerConfig bad;
  bad.max_inflight = 0;
  EXPECT_THROW(HttpServer{bad}, std::invalid_argument);

  Fixture fixture;
  EXPECT_TRUE(fixture.server.running());
  EXPECT_GT(fixture.server.port(), 0);
  EXPECT_THROW(fixture.server.start(), std::logic_error);
  fixture.server.stop();
  EXPECT_FALSE(fixture.server.running());
  fixture.server.stop();  // idempotent
}

}  // namespace
}  // namespace man::serve::http
