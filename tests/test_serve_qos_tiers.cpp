// The accuracy/energy QoS ladder: pick_tier's deterministic
// delay-to-tier mapping (boundaries, min-tier pin, degenerate SLO),
// ladder-spec parsing and validation, the tiered InferenceServer
// constructor cross-checks, per-tier bit-identity against each rung's
// own sequential engine across every kernel backend, and the
// EngineStats backend/tier label merge policy (an idle runner carries
// no vote).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "man/backend/kernel_backend.h"
#include "man/engine/engine_stats.h"
#include "man/engine/fixed_network.h"
#include "man/nn/activation_layer.h"
#include "man/nn/constraint_projection.h"
#include "man/nn/dense.h"
#include "man/serve/inference_server.h"
#include "man/util/rng.h"

namespace man::serve {
namespace {

using namespace std::chrono_literals;
using man::core::AlphabetSet;
using man::engine::EngineStats;
using man::engine::FixedNetwork;
using man::engine::LayerAlphabetPlan;
using man::nn::ActivationLayer;
using man::nn::Dense;
using man::nn::Network;
using man::nn::ProjectionPlan;
using man::nn::QuantSpec;

Network make_mlp(std::uint64_t seed, int in, int hidden, int out) {
  man::util::Rng rng(seed);
  Network net;
  net.add<Dense>(in, hidden).init_xavier(rng);
  net.add<ActivationLayer>(man::core::ActivationKind::kSigmoid);
  net.add<Dense>(hidden, out).init_xavier(rng);
  return net;
}

/// One ASM rung: projected weights, uniform ASM plan over `set`.
std::shared_ptr<const FixedNetwork> make_asm_engine(std::uint64_t seed, int in,
                                                    int hidden, int out,
                                                    const AlphabetSet& set) {
  const QuantSpec spec = QuantSpec::bits8();
  Network net = make_mlp(seed, in, hidden, out);
  const ProjectionPlan projection(spec, set, net.num_weight_layers());
  projection.project_network(net);
  return std::make_shared<FixedNetwork>(
      net, spec,
      LayerAlphabetPlan::uniform_asm(net.num_weight_layers(), set));
}

/// The asm4,asm2,exact ladder every server test dispatches over: two
/// projected ASM rungs plus a conventional exact-multiplier rung.
TieredEngine make_ladder(std::uint64_t seed, int in = 8, int hidden = 6,
                         int out = 3) {
  const QuantSpec spec = QuantSpec::bits8();
  TieredEngine tiered;
  tiered.tiers.push_back(
      {QosTier{"asm4", 4},
       make_asm_engine(seed, in, hidden, out, AlphabetSet::four())});
  tiered.tiers.push_back(
      {QosTier{"asm2", 2},
       make_asm_engine(seed, in, hidden, out, AlphabetSet::two())});
  Network net = make_mlp(seed, in, hidden, out);
  tiered.tiers.push_back(
      {QosTier{"exact", 0},
       std::make_shared<FixedNetwork>(
           net, spec,
           LayerAlphabetPlan::conventional(net.num_weight_layers()))});
  return tiered;
}

std::vector<float> random_samples(std::size_t count, std::size_t sample_size,
                                  std::uint64_t seed) {
  man::util::Rng rng(seed);
  std::vector<float> pixels(count * sample_size);
  for (float& p : pixels) p = static_cast<float>(rng.next_double());
  return pixels;
}

/// Sequential ground truth for one rung: one sample at a time through
/// that rung's own infer_into, exactly the pre-serving code path.
std::vector<std::int64_t> sequential_raw(const FixedNetwork& engine,
                                         std::span<const float> pixels) {
  const std::size_t count = pixels.size() / engine.input_size();
  std::vector<std::int64_t> raw(count * engine.output_size());
  auto stats = engine.make_stats();
  auto scratch = engine.make_scratch();
  for (std::size_t i = 0; i < count; ++i) {
    engine.infer_into(
        pixels.subspan(i * engine.input_size(), engine.input_size()),
        std::span<std::int64_t>(raw).subspan(i * engine.output_size(),
                                             engine.output_size()),
        stats, scratch);
  }
  return raw;
}

// ---------------------------------------------------------------- pick_tier

// Tier t serves while the estimated delay sits in
// [t*slo/T, (t+1)*slo/T); at or past the SLO the last tier serves.
TEST(PickTier, MapsDelayBandsToTiersDeterministically) {
  const auto slo = 30'000us;  // slice = 10 ms per tier on a 3-rung ladder
  EXPECT_EQ(InferenceServer::pick_tier(0ns, slo, 3, 0), 0u);
  EXPECT_EQ(InferenceServer::pick_tier(5ms, slo, 3, 0), 0u);
  EXPECT_EQ(InferenceServer::pick_tier(10ms - 1ns, slo, 3, 0), 0u);
  EXPECT_EQ(InferenceServer::pick_tier(10ms, slo, 3, 0), 1u);
  EXPECT_EQ(InferenceServer::pick_tier(20ms - 1ns, slo, 3, 0), 1u);
  EXPECT_EQ(InferenceServer::pick_tier(20ms, slo, 3, 0), 2u);
  EXPECT_EQ(InferenceServer::pick_tier(30ms, slo, 3, 0), 2u);
  // Past the SLO the ladder is exhausted: still the last tier —
  // shedding beyond it is the front-end's job, not the picker's.
  EXPECT_EQ(InferenceServer::pick_tier(10h, slo, 3, 0), 2u);
}

TEST(PickTier, MinTierPinsTheFloorNotTheCeiling) {
  const auto slo = 30'000us;
  EXPECT_EQ(InferenceServer::pick_tier(0ns, slo, 3, 1), 1u);
  EXPECT_EQ(InferenceServer::pick_tier(15ms, slo, 3, 1), 1u);
  EXPECT_EQ(InferenceServer::pick_tier(25ms, slo, 3, 1), 2u);  // pressure wins
  EXPECT_EQ(InferenceServer::pick_tier(0ns, slo, 3, 2), 2u);
  // An out-of-range pin clamps to the last tier instead of indexing
  // past the ladder.
  EXPECT_EQ(InferenceServer::pick_tier(0ns, slo, 3, 99), 2u);
}

TEST(PickTier, DegenerateShapesNeverMisindex) {
  EXPECT_EQ(InferenceServer::pick_tier(5ms, 0us, 3, 0), 2u);   // zero SLO
  EXPECT_EQ(InferenceServer::pick_tier(5ms, -1us, 3, 0), 2u);  // negative SLO
  EXPECT_EQ(InferenceServer::pick_tier(5ms, 30'000us, 1, 0), 0u);  // untiered
  EXPECT_EQ(InferenceServer::pick_tier(5ms, 30'000us, 0, 0), 0u);  // empty
  EXPECT_EQ(InferenceServer::pick_tier(-5ms, 30'000us, 3, 0), 0u);  // clock
}

// ------------------------------------------------------------ ladder parsing

TEST(ParseQosTiers, ParsesSchemesAndMinPin) {
  std::size_t min_tier = 99;
  const auto ladder = parse_qos_tiers("asm4,asm2,exact", &min_tier);
  ASSERT_EQ(ladder.size(), 3u);
  EXPECT_EQ(ladder[0].name, "asm4");
  EXPECT_EQ(ladder[0].alphabets, 4u);
  EXPECT_EQ(ladder[1].name, "asm2");
  EXPECT_EQ(ladder[1].alphabets, 2u);
  EXPECT_EQ(ladder[2].name, "exact");
  EXPECT_EQ(ladder[2].alphabets, 0u);
  EXPECT_EQ(min_tier, 0u);  // absent suffix resets to 0

  const auto pinned = parse_qos_tiers("asm8,asm1;min=1", &min_tier);
  ASSERT_EQ(pinned.size(), 2u);
  EXPECT_EQ(pinned[0].alphabets, 8u);
  EXPECT_EQ(pinned[1].alphabets, 1u);
  EXPECT_EQ(min_tier, 1u);
}

TEST(ParseQosTiers, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_qos_tiers(""), std::invalid_argument);
  EXPECT_THROW((void)parse_qos_tiers("asm0"), std::invalid_argument);
  EXPECT_THROW((void)parse_qos_tiers("asm9"), std::invalid_argument);
  EXPECT_THROW((void)parse_qos_tiers("float64"), std::invalid_argument);
  EXPECT_THROW((void)parse_qos_tiers("asm4,asm4"), std::invalid_argument);
  EXPECT_THROW((void)parse_qos_tiers("asm4,,asm2"), std::invalid_argument);
  EXPECT_THROW((void)parse_qos_tiers("asm4,asm2;min=2"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_qos_tiers("asm4;min=x"), std::invalid_argument);
}

TEST(ServeConfigQos, AppliesAndValidatesEnvOverride) {
  ASSERT_EQ(setenv("MAN_QOS_TIERS", "asm2,exact;min=1", 1), 0);
  ServeConfig config;
  config.apply_qos_env();
  ASSERT_EQ(config.qos_tiers.size(), 2u);
  EXPECT_EQ(config.qos_tiers[0].name, "asm2");
  EXPECT_EQ(config.qos_tiers[1].name, "exact");
  EXPECT_EQ(config.qos_min_tier, 1u);

  ASSERT_EQ(setenv("MAN_QOS_TIERS", "not-a-ladder", 1), 0);
  EXPECT_THROW(config.apply_qos_env(), std::invalid_argument);

  ASSERT_EQ(unsetenv("MAN_QOS_TIERS"), 0);
  ServeConfig untouched;
  untouched.apply_qos_env();  // no-op when unset
  EXPECT_TRUE(untouched.qos_tiers.empty());
  EXPECT_EQ(untouched.qos_min_tier, 0u);
}

TEST(TieredEngineValidate, RejectsBrokenLadders) {
  EXPECT_THROW(TieredEngine{}.validate(), std::invalid_argument);

  TieredEngine null_engine = make_ladder(21);
  null_engine.tiers[1].engine = nullptr;
  EXPECT_THROW(null_engine.validate(), std::invalid_argument);

  TieredEngine duplicate = make_ladder(22);
  duplicate.tiers[1].spec.name = duplicate.tiers[0].spec.name;
  EXPECT_THROW(duplicate.validate(), std::invalid_argument);

  TieredEngine ragged = make_ladder(23);
  ragged.tiers[1].engine =
      make_asm_engine(23, 9, 6, 3, AlphabetSet::two());  // 9 != 8 inputs
  EXPECT_THROW(ragged.validate(), std::invalid_argument);

  make_ladder(24).validate();  // the well-formed ladder passes
}

// ------------------------------------------------------- server constructors

TEST(TieredServerCtor, SingleEngineCtorRejectsQosConfig) {
  const auto engine = make_asm_engine(30, 8, 6, 3, AlphabetSet::four());
  ServeConfig config;
  config.qos_tiers = parse_qos_tiers("asm4,asm2");
  EXPECT_THROW(InferenceServer(*engine, config), std::invalid_argument);
}

TEST(TieredServerCtor, RejectsLadderShapeMismatches) {
  ServeConfig two_rungs;
  two_rungs.qos_tiers = parse_qos_tiers("asm4,asm2");
  EXPECT_THROW(InferenceServer(make_ladder(31), two_rungs),
               std::invalid_argument);

  ServeConfig pin_past_end;
  pin_past_end.qos_min_tier = 3;
  EXPECT_THROW(InferenceServer(make_ladder(32), pin_past_end),
               std::invalid_argument);
}

// An empty config ladder is backfilled from the TieredEngine so the
// server's config() introspects the rungs it actually serves.
TEST(TieredServerCtor, BackfillsConfigLadderFromEngines) {
  InferenceServer server(make_ladder(33), ServeConfig{});
  ASSERT_EQ(server.tier_count(), 3u);
  ASSERT_EQ(server.config().qos_tiers.size(), 3u);
  EXPECT_EQ(server.config().qos_tiers[0].name, "asm4");
  EXPECT_EQ(server.config().qos_tiers[2].name, "exact");
  EXPECT_EQ(server.tier_spec(1).name, "asm2");
}

// --------------------------------------------------------- tier dispatching

// With a clear queue the dispatcher always serves the ladder front:
// full precision is the steady state, degradation needs pressure.
// The SLO is pinned huge so a CPU-starved CI runner cannot push the
// delay estimate into a degradation band and flip the expected tier.
TEST(TieredServer, ClearQueueServesTierZero) {
  ServeConfig config;
  config.queue_delay_slo = std::chrono::minutes(10);
  InferenceServer server(make_ladder(40), config);
  for (int r = 0; r < 4; ++r) {
    const auto pixels = random_samples(2, 8, 400 + static_cast<unsigned>(r));
    const InferenceResult result = server.submit(pixels).get();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.tier, 0u);
    EXPECT_EQ(result.tier_name, "asm4");
    EXPECT_EQ(result.raw, sequential_raw(server.tier_engine(0), pixels));
  }
  EXPECT_EQ(server.stats().tier, "asm4");
}

// An untiered server reports the "full" placeholder tier.
TEST(TieredServer, UntieredServerReportsFullTier) {
  const auto engine = make_asm_engine(41, 8, 6, 3, AlphabetSet::man());
  InferenceServer server(*engine);
  const auto pixels = random_samples(1, 8, 410);
  const InferenceResult result = server.submit(pixels).get();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.tier, 0u);
  EXPECT_EQ(result.tier_name, "full");
  EXPECT_EQ(server.tier_count(), 1u);
  EXPECT_EQ(server.stats().tier, "full");
}

// Acceptance: every rung of the ladder, forced via the min-tier pin,
// is bit-identical to its own sequential engine — on every kernel
// backend (the lock-step property must survive tier dispatch).
class TierBitIdentityAcrossBackends
    : public ::testing::TestWithParam<man::backend::BackendKind> {};

TEST_P(TierBitIdentityAcrossBackends, EachRungMatchesItsSequentialEngine) {
  const char* expected_name[] = {"asm4", "asm2", "exact"};
  for (std::size_t pin = 0; pin < 3; ++pin) {
    ServeConfig config;
    config.backend = GetParam();
    config.max_batch = 8;
    config.max_wait = 200us;
    config.qos_min_tier = pin;
    // Huge SLO: the pin alone decides the tier, even on a loaded
    // runner where the delay estimate would otherwise add pressure.
    config.queue_delay_slo = std::chrono::minutes(10);
    InferenceServer server(make_ladder(50), config);
    man::util::Rng rng(500 + pin);
    for (int r = 0; r < 6; ++r) {
      const std::size_t count = 1 + rng.next_below(3);
      const auto pixels =
          random_samples(count, 8, 5000 + pin * 100 + static_cast<unsigned>(r));
      const InferenceResult result = server.submit(pixels).get();
      ASSERT_TRUE(result.ok()) << "pin " << pin << " request " << r;
      EXPECT_EQ(result.tier, pin);
      EXPECT_EQ(result.tier_name, expected_name[pin]);
      EXPECT_EQ(result.raw, sequential_raw(server.tier_engine(pin), pixels))
          << "pin " << pin << " request " << r << " backend "
          << man::backend::to_string(GetParam());
    }
    // All work ran pinned: the merged stats label is that rung's name,
    // not "mixed" — the other rungs' idle runners carry no vote.
    EXPECT_EQ(server.stats().tier, expected_name[pin]);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, TierBitIdentityAcrossBackends,
                         ::testing::Values(man::backend::BackendKind::kScalar,
                                           man::backend::BackendKind::kBlocked,
                                           man::backend::BackendKind::kSimd,
                                           man::backend::BackendKind::kAvx512));

// ------------------------------------------------------ stats label policy

// Regression for the label merge policy: zero-inference stats (a
// freshly constructed runner, an idle shard) must neither flip a real
// label to "mixed" nor donate their own label.
TEST(EngineStatsLabels, IdleRunnerCarriesNoVote) {
  EngineStats active;
  active.inferences = 5;
  active.backend = "simd";
  active.tier = "asm4";

  EngineStats idle;
  idle.inferences = 0;
  idle.backend = "scalar";
  idle.tier = "exact";

  active.merge(idle);
  EXPECT_EQ(active.backend, "simd");
  EXPECT_EQ(active.tier, "asm4");
  EXPECT_EQ(active.inferences, 5u);
}

TEST(EngineStatsLabels, EmptySideAdoptsAndConflictsGoMixed) {
  EngineStats fresh;  // no label, no inferences: adopts the first real run
  EngineStats run;
  run.inferences = 3;
  run.backend = "blocked";
  run.tier = "asm2";
  fresh.merge(run);
  EXPECT_EQ(fresh.backend, "blocked");
  EXPECT_EQ(fresh.tier, "asm2");

  EngineStats other_tier;
  other_tier.inferences = 2;
  other_tier.backend = "blocked";
  other_tier.tier = "exact";
  fresh.merge(other_tier);
  EXPECT_EQ(fresh.backend, "blocked");  // same backend stays concrete
  EXPECT_EQ(fresh.tier, "mixed");       // tiers differ -> mixed
  EXPECT_EQ(fresh.inferences, 5u);
}

}  // namespace
}  // namespace man::serve
