// Alphabet-set search (extension): enumeration, optimality against the
// prefix ladder, empirical-distribution optimization.
#include "man/core/alphabet_optimizer.h"

#include <gtest/gtest.h>

#include "man/core/weight_constraint.h"
#include "man/util/rng.h"

namespace man::core {
namespace {

TEST(AlphabetEnumeration, CountsAreBinomial) {
  // C(7, k-1) sets containing alphabet 1.
  EXPECT_EQ(enumerate_alphabet_sets(1).size(), 1u);
  EXPECT_EQ(enumerate_alphabet_sets(2).size(), 7u);
  EXPECT_EQ(enumerate_alphabet_sets(3).size(), 21u);
  EXPECT_EQ(enumerate_alphabet_sets(4).size(), 35u);
  EXPECT_EQ(enumerate_alphabet_sets(8).size(), 1u);
  EXPECT_THROW((void)enumerate_alphabet_sets(0), std::invalid_argument);
  EXPECT_THROW((void)enumerate_alphabet_sets(9), std::invalid_argument);
}

TEST(AlphabetEnumeration, EverySetContainsOne) {
  for (std::size_t k = 1; k <= 8; ++k) {
    for (const AlphabetSet& set : enumerate_alphabet_sets(k)) {
      EXPECT_TRUE(set.contains(1));
      EXPECT_EQ(set.size(), k);
    }
  }
}

TEST(UniformCost, FullSetIsZeroAndMoreAlphabetsNeverHurt) {
  const QuartetLayout layout = QuartetLayout::bits8();
  EXPECT_EQ(uniform_constraint_cost(layout, AlphabetSet::full()), 0.0);
  const double c1 = uniform_constraint_cost(layout, AlphabetSet::man());
  const double c2 = uniform_constraint_cost(layout, AlphabetSet::two());
  const double c4 = uniform_constraint_cost(layout, AlphabetSet::four());
  EXPECT_GT(c1, c2);
  EXPECT_GT(c2, c4);
}

TEST(OptimizeUniform, NeverWorseThanLadderAndExhaustive) {
  for (int bits : {8, 12}) {
    const QuartetLayout layout(bits);
    for (std::size_t k : {2u, 3u, 4u}) {
      const auto result = optimize_uniform(layout, k);
      EXPECT_LE(result.best_cost, result.ladder_cost)
          << "bits=" << bits << " k=" << k;
      EXPECT_EQ(result.candidates,
                static_cast<int>(enumerate_alphabet_sets(k).size()));
      // Verify optimality by re-checking every candidate.
      for (const AlphabetSet& set : enumerate_alphabet_sets(k)) {
        EXPECT_GE(uniform_constraint_cost(layout, set) + 1e-12,
                  result.best_cost);
      }
    }
  }
}

TEST(OptimizeUniform, SingletonIsTrivially1) {
  const auto result = optimize_uniform(QuartetLayout::bits8(), 1);
  EXPECT_EQ(result.best, AlphabetSet::man());
  EXPECT_EQ(result.best_cost, result.ladder_cost);
}

TEST(OptimizeEmpirical, AdaptsToTheDistribution) {
  const QuartetLayout layout = QuartetLayout::bits8();
  // A weight population concentrated on magnitudes with quartet value
  // 9 (unsupported by {1,3}): weights like 9, 25 (R=9), 9<<4 ...
  std::vector<int> weights;
  for (int i = 0; i < 50; ++i) {
    weights.push_back(9);
    weights.push_back(-9);
    weights.push_back(0x19);  // R=9, P=1
  }
  const auto result = optimize_empirical(layout, 2, weights);
  // A 2-set containing 9 serves this population with zero error —
  // strictly better than the ladder {1,3}.
  EXPECT_TRUE(result.best.contains(9));
  EXPECT_EQ(result.best_cost, 0.0);
  EXPECT_GT(result.ladder_cost, 0.0);
}

TEST(OptimizeEmpirical, EmptyWeightsCostZero) {
  const auto result =
      optimize_empirical(QuartetLayout::bits8(), 2, {});
  EXPECT_EQ(result.best_cost, 0.0);
}

TEST(EmpiricalCost, MatchesDirectComputation) {
  const QuartetLayout layout = QuartetLayout::bits8();
  const WeightConstraint wc(layout, AlphabetSet::man());
  man::util::Rng rng(5);
  std::vector<int> weights;
  for (int i = 0; i < 100; ++i) {
    weights.push_back(static_cast<int>(rng.next_in(-127, 127)));
  }
  double expected = 0.0;
  for (int w : weights) {
    const double err = w - wc.constrain(w);
    expected += err * err;
  }
  expected /= static_cast<double>(weights.size());
  EXPECT_NEAR(empirical_constraint_cost(layout, AlphabetSet::man(), weights),
              expected, 1e-9);
}

}  // namespace
}  // namespace man::core
