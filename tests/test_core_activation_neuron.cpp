// Activation functions, the LUT used by the fixed-point engine, and
// the per-neuron datapath models (paper §II Fig 1a, §IV.D Fig 6).
#include "man/core/activation.h"
#include "man/core/neuron.h"

#include <gtest/gtest.h>

#include <cmath>

namespace man::core {
namespace {

TEST(Activation, SigmoidValuesAndDerivative) {
  EXPECT_NEAR(activate(ActivationKind::kSigmoid, 0.0), 0.5, 1e-12);
  EXPECT_NEAR(activate(ActivationKind::kSigmoid, 100.0), 1.0, 1e-9);
  EXPECT_NEAR(activate(ActivationKind::kSigmoid, -100.0), 0.0, 1e-9);
  const double y = activate(ActivationKind::kSigmoid, 0.7);
  EXPECT_NEAR(activate_derivative_from_output(ActivationKind::kSigmoid, y),
              y * (1 - y), 1e-12);
}

TEST(Activation, TanhReluIdentity) {
  EXPECT_NEAR(activate(ActivationKind::kTanh, 0.5), std::tanh(0.5), 1e-12);
  EXPECT_EQ(activate(ActivationKind::kRelu, -2.0), 0.0);
  EXPECT_EQ(activate(ActivationKind::kRelu, 2.0), 2.0);
  EXPECT_EQ(activate(ActivationKind::kIdentity, 3.25), 3.25);
  EXPECT_EQ(activate_derivative_from_output(ActivationKind::kRelu, 0.0), 0.0);
  EXPECT_EQ(activate_derivative_from_output(ActivationKind::kRelu, 1.0), 1.0);
}

TEST(FixedActivationLut, ApproximatesSigmoidWithinLutResolution) {
  const man::fixed::QFormat acc(30, 14);
  const man::fixed::QFormat out = man::fixed::QFormat::input8();
  const FixedActivationLut lut(ActivationKind::kSigmoid, acc, out, 10);
  for (double x : {-6.0, -2.0, -0.5, 0.0, 0.5, 2.0, 6.0}) {
    const double expected = activate(ActivationKind::kSigmoid, x);
    // Tolerance: LUT step (16/1024) times max slope (0.25) plus the
    // output quantization step.
    EXPECT_NEAR(lut.apply(x), expected, 16.0 / 1024.0 * 0.25 + 1.0 / 256.0)
        << "x=" << x;
  }
}

TEST(FixedActivationLut, SaturatesOutsideClipRange) {
  const man::fixed::QFormat acc(30, 14);
  const man::fixed::QFormat out = man::fixed::QFormat::input8();
  const FixedActivationLut lut(ActivationKind::kSigmoid, acc, out);
  EXPECT_NEAR(lut.apply(100.0), 1.0, 1.0 / 256.0);
  EXPECT_NEAR(lut.apply(-100.0), 0.0, 1.0 / 256.0);
}

TEST(FixedActivationLut, MonotoneForMonotoneFunctions) {
  const man::fixed::QFormat acc(30, 14);
  const man::fixed::QFormat out = man::fixed::QFormat::input8();
  const FixedActivationLut lut(ActivationKind::kTanh, acc, out, 8);
  std::int32_t previous = lut.apply_raw(-(1 << 20));
  for (std::int64_t raw = -(1 << 20); raw <= (1 << 20); raw += 1 << 14) {
    const std::int32_t value = lut.apply_raw(raw);
    EXPECT_GE(value, previous);
    previous = value;
  }
}

TEST(NeuronConfig, EffectiveAlphabetsFollowKind) {
  NeuronConfig config;
  config.multiplier = MultiplierKind::kMan;
  config.alphabets = AlphabetSet::four();  // ignored for MAN
  EXPECT_EQ(config.effective_alphabets(), AlphabetSet::man());
  config.multiplier = MultiplierKind::kAsm;
  EXPECT_EQ(config.effective_alphabets(), AlphabetSet::four());
}

TEST(Neuron, ExactAndFullAsmNeuronsAgreeBitExactly) {
  NeuronConfig exact_cfg;
  exact_cfg.multiplier = MultiplierKind::kExact;
  NeuronConfig asm_cfg;
  asm_cfg.multiplier = MultiplierKind::kAsm;
  asm_cfg.alphabets = AlphabetSet::full();

  const Neuron exact(exact_cfg);
  const Neuron asm_neuron(asm_cfg);

  const std::vector<std::int32_t> inputs{10, 200, 255, 0, 128};
  const std::vector<int> weights{64, -37, 115, 127, -90};
  const auto a = exact.forward(inputs, weights, 500);
  const auto b = asm_neuron.forward(inputs, weights, 500);
  EXPECT_EQ(a.accumulator_raw, b.accumulator_raw);
  EXPECT_EQ(a.activation_raw, b.activation_raw);
}

TEST(Neuron, ManNeuronConstrainsWeights) {
  NeuronConfig cfg;
  cfg.multiplier = MultiplierKind::kMan;
  const Neuron man_neuron(cfg);
  // Weight 9 is unsupported under {1}; it constrains to 8.
  const std::vector<std::int32_t> inputs{100};
  const std::vector<int> weights{9};
  const auto out = man_neuron.forward(inputs, weights, 0);
  EXPECT_EQ(out.accumulator_raw, 8 * 100);
}

TEST(Neuron, AccumulatesOpCounts) {
  NeuronConfig cfg;
  cfg.multiplier = MultiplierKind::kAsm;
  cfg.alphabets = AlphabetSet::two();
  const Neuron neuron(cfg);
  const std::vector<std::int32_t> inputs{10, 20};
  const std::vector<int> weights{3, 48};  // both representable
  OpCounts counts;
  (void)neuron.forward(inputs, weights, 0, &counts);
  EXPECT_GT(counts.selects, 0u);
  EXPECT_GT(counts.adds, 0u);
  EXPECT_EQ(counts.precomputer_adds, 2u);  // one bank firing per input
}

TEST(Neuron, RejectsMismatchedSpans) {
  const Neuron neuron{NeuronConfig{}};
  const std::vector<std::int32_t> inputs{1, 2, 3};
  const std::vector<int> weights{1};
  EXPECT_THROW((void)neuron.forward(inputs, weights, 0),
               std::invalid_argument);
}

TEST(Neuron, SigmoidOutputInUnitRange) {
  const Neuron neuron{NeuronConfig{}};
  const std::vector<std::int32_t> inputs{255, 255, 255};
  const std::vector<int> weights{127, 127, 127};
  const auto out = neuron.forward(inputs, weights, 0);
  EXPECT_GE(out.activation_value, 0.0);
  EXPECT_LE(out.activation_value, 1.0);
  EXPECT_GT(out.activation_value, 0.9);  // strongly positive input
}

TEST(MultiplierKind, ToStringCoversAll) {
  EXPECT_EQ(to_string(MultiplierKind::kExact), "conventional");
  EXPECT_EQ(to_string(MultiplierKind::kAsm), "ASM");
  EXPECT_EQ(to_string(MultiplierKind::kMan), "MAN");
}

}  // namespace
}  // namespace man::core
