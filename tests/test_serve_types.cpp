// The typed serving API: ServeConfig validation, the Status
// vocabulary and its HTTP mapping, and every non-kOk path through the
// typed InferenceServer submit (kBadRequest / kRejectedOverload /
// kDeadlineExceeded / kShutdown) — none of which throws, unlike the
// deprecated legacy submit whose throw semantics are pinned here too.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <stdexcept>
#include <vector>

#include "man/core/alphabet_set.h"
#include "man/engine/fixed_network.h"
#include "man/nn/activation_layer.h"
#include "man/nn/constraint_projection.h"
#include "man/nn/dense.h"
#include "man/serve/inference_server.h"
#include "man/serve/serve_types.h"
#include "man/util/rng.h"

namespace man::serve {
namespace {

using namespace std::chrono_literals;
using man::core::AlphabetSet;
using man::engine::FixedNetwork;
using man::engine::LayerAlphabetPlan;
using man::nn::ActivationLayer;
using man::nn::Dense;
using man::nn::Network;
using man::nn::ProjectionPlan;
using man::nn::QuantSpec;

FixedNetwork make_engine(std::uint64_t seed, int in, int hidden, int out) {
  man::util::Rng rng(seed);
  Network net;
  net.add<Dense>(in, hidden).init_xavier(rng);
  net.add<ActivationLayer>(man::core::ActivationKind::kSigmoid);
  net.add<Dense>(hidden, out).init_xavier(rng);
  const QuantSpec spec = QuantSpec::bits8();
  const AlphabetSet set = AlphabetSet::man();
  const ProjectionPlan projection(spec, set, net.num_weight_layers());
  projection.project_network(net);
  return FixedNetwork(
      net, spec, LayerAlphabetPlan::uniform_asm(net.num_weight_layers(), set));
}

std::vector<float> random_samples(std::size_t count, std::size_t sample_size,
                                  std::uint64_t seed) {
  man::util::Rng rng(seed);
  std::vector<float> pixels(count * sample_size);
  for (float& p : pixels) p = static_cast<float>(rng.next_double());
  return pixels;
}

std::vector<std::int64_t> sequential_raw(const FixedNetwork& engine,
                                         std::span<const float> pixels) {
  const std::size_t count = pixels.size() / engine.input_size();
  std::vector<std::int64_t> raw(count * engine.output_size());
  auto stats = engine.make_stats();
  auto scratch = engine.make_scratch();
  for (std::size_t i = 0; i < count; ++i) {
    engine.infer_into(
        pixels.subspan(i * engine.input_size(), engine.input_size()),
        std::span<std::int64_t>(raw).subspan(i * engine.output_size(),
                                             engine.output_size()),
        stats, scratch);
  }
  return raw;
}

TEST(ServeTypes, StatusNamesAndHttpMapping) {
  EXPECT_STREQ(status_name(Status::kOk), "ok");
  EXPECT_STREQ(status_name(Status::kDeadlineExceeded), "deadline_exceeded");
  EXPECT_STREQ(status_name(Status::kRejectedOverload), "rejected_overload");
  EXPECT_STREQ(status_name(Status::kBadRequest), "bad_request");
  EXPECT_STREQ(status_name(Status::kShutdown), "shutdown");

  EXPECT_EQ(http_status_for(Status::kOk), 200);
  EXPECT_EQ(http_status_for(Status::kDeadlineExceeded), 504);
  EXPECT_EQ(http_status_for(Status::kRejectedOverload), 429);
  EXPECT_EQ(http_status_for(Status::kBadRequest), 400);
  EXPECT_EQ(http_status_for(Status::kShutdown), 503);
}

TEST(ServeConfig, ValidationRejectsNonsense) {
  const auto throws = [](auto&& mutate) {
    ServeConfig config;
    mutate(config);
    EXPECT_THROW(config.validate(), std::invalid_argument);
  };
  throws([](ServeConfig& c) { c.max_batch = 0; });
  throws([](ServeConfig& c) { c.max_wait = -1us; });
  throws([](ServeConfig& c) { c.workers = -1; });
  throws([](ServeConfig& c) { c.min_samples_per_worker = 0; });
  throws([](ServeConfig& c) { c.queue_capacity = 0; });
  throws([](ServeConfig& c) { c.queue_delay_slo = 0us; });
  throws([](ServeConfig& c) {  // queue smaller than one full batch
    c.max_batch = 128;
    c.queue_capacity = 64;
  });
  EXPECT_NO_THROW(ServeConfig{}.validate());
}

TEST(ServeConfig, ConstructorValidates) {
  const FixedNetwork engine = make_engine(1, 8, 6, 3);
  ServeConfig config;
  config.queue_capacity = 0;
  EXPECT_THROW(InferenceServer(engine, config), std::invalid_argument);
}

// The legacy options map onto an effectively unbounded queue so no
// pre-typed-API call site can suddenly see admission rejections.
TEST(ServeConfig, LegacyOptionsMapToUnboundedishQueue) {
  ServerOptions options;
  options.max_batch = 1u << 22;
  options.max_wait = 7ms;
  options.batch.workers = 3;
  const ServeConfig config = options.to_config();
  EXPECT_EQ(config.max_batch, options.max_batch);
  EXPECT_EQ(config.max_wait, options.max_wait);
  EXPECT_EQ(config.workers, 3);
  EXPECT_GE(config.queue_capacity, options.max_batch);
  EXPECT_NO_THROW(config.validate());
}

TEST(TypedSubmit, ServesWithFullResultMetadata) {
  const FixedNetwork engine = make_engine(2, 8, 6, 3);
  ServeConfig config;
  config.max_wait = 1ms;
  InferenceServer server(engine, config);

  InferenceRequest request;
  request.payload = random_samples(2, engine.input_size(), 7);
  const auto expected = sequential_raw(engine, request.payload);
  const InferenceResult result = server.submit(std::move(request)).get();

  EXPECT_EQ(result.status, Status::kOk);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.samples, 2u);
  EXPECT_EQ(result.output_size, engine.output_size());
  EXPECT_EQ(result.raw, expected);
  EXPECT_EQ(result.predictions.size(), 2u);
  EXPECT_FALSE(result.backend.empty());
  EXPECT_GT(result.compute_ns, 0u);
}

// Typed path: malformed payloads resolve kBadRequest — no throw.
TEST(TypedSubmit, BadPayloadResolvesBadRequest) {
  const FixedNetwork engine = make_engine(3, 8, 6, 3);
  InferenceServer server(engine);

  InferenceRequest empty;
  const InferenceResult empty_result = server.submit(std::move(empty)).get();
  EXPECT_EQ(empty_result.status, Status::kBadRequest);
  EXPECT_FALSE(empty_result.ok());
  EXPECT_FALSE(empty_result.message.empty());

  InferenceRequest ragged;
  ragged.payload.assign(engine.input_size() + 1, 0.5f);
  EXPECT_EQ(server.submit(std::move(ragged)).get().status,
            Status::kBadRequest);
  EXPECT_EQ(server.metrics().rejected_bad_request, 2u);
}

// The bounded queue: a request that cannot ever fit (more samples
// than queue_capacity) is shed immediately with a Retry-After hint.
TEST(TypedSubmit, OverloadRejectionIsImmediateWithRetryAfter) {
  const FixedNetwork engine = make_engine(4, 8, 6, 3);
  ServeConfig config;
  config.max_batch = 2;
  config.queue_capacity = 2;
  config.max_wait = 1ms;
  InferenceServer server(engine, config);

  InferenceRequest request;
  request.payload = random_samples(8, engine.input_size(), 9);
  const InferenceResult result = server.submit(std::move(request)).get();
  EXPECT_EQ(result.status, Status::kRejectedOverload);
  EXPECT_GE(result.retry_after, 1ms);
  EXPECT_EQ(server.metrics().rejected_overload, 1u);
}

// An expired hard deadline on the typed path is a real drop (unlike
// the legacy flush-hint deadline, pinned below).
TEST(TypedSubmit, ExpiredHardDeadlineResolvesDeadlineExceeded) {
  const FixedNetwork engine = make_engine(5, 8, 6, 3);
  ServeConfig config;
  config.max_wait = 10s;  // only the deadline can flush this quickly
  InferenceServer server(engine, config);

  InferenceRequest request;
  request.payload = random_samples(1, engine.input_size(), 10);
  request.deadline = InferenceRequest::Clock::now() - 1s;
  auto future = server.submit(std::move(request));
  ASSERT_EQ(future.wait_for(5s), std::future_status::ready);
  const InferenceResult result = future.get();
  EXPECT_EQ(result.status, Status::kDeadlineExceeded);
  EXPECT_EQ(result.raw.size(), 0u);
  EXPECT_EQ(server.metrics().deadline_expired, 1u);
}

TEST(TypedSubmit, LegacyExpiredDeadlineIsStillServed) {
  const FixedNetwork engine = make_engine(6, 8, 6, 3);
  ServerOptions options;
  options.max_wait = 10s;
  InferenceServer server(engine, options);

  const auto pixels = random_samples(1, engine.input_size(), 11);
  const InferenceResult result =
      server.submit(pixels, InferenceServer::Clock::now() - 1s).get();
  EXPECT_EQ(result.status, Status::kOk);
  EXPECT_EQ(result.raw, sequential_raw(engine, pixels));
}

TEST(TypedSubmit, ShutdownResolvesStatusButLegacyThrows) {
  const FixedNetwork engine = make_engine(7, 8, 6, 3);
  InferenceServer server(engine);
  server.shutdown();

  InferenceRequest request;
  request.payload = random_samples(1, engine.input_size(), 12);
  EXPECT_EQ(server.submit(std::move(request)).get().status,
            Status::kShutdown);
  EXPECT_EQ(server.metrics().rejected_shutdown, 1u);

  const auto pixels = random_samples(1, engine.input_size(), 13);
  EXPECT_THROW((void)server.submit(pixels), std::runtime_error);
}

// submit_async: rejections call back inline, successes from the
// dispatcher; both exactly once.
TEST(TypedSubmit, AsyncCallbackPaths) {
  const FixedNetwork engine = make_engine(8, 8, 6, 3);
  ServeConfig config;
  config.max_wait = 1ms;
  InferenceServer server(engine, config);

  std::promise<InferenceResult> bad_promise;
  server.submit_async(InferenceRequest{}, [&](InferenceResult&& result) {
    bad_promise.set_value(std::move(result));
  });
  EXPECT_EQ(bad_promise.get_future().get().status, Status::kBadRequest);

  InferenceRequest request;
  request.payload = random_samples(3, engine.input_size(), 14);
  const auto expected = sequential_raw(engine, request.payload);
  std::promise<InferenceResult> ok_promise;
  server.submit_async(std::move(request), [&](InferenceResult&& result) {
    ok_promise.set_value(std::move(result));
  });
  auto future = ok_promise.get_future();
  ASSERT_EQ(future.wait_for(30s), std::future_status::ready);
  const InferenceResult result = future.get();
  EXPECT_EQ(result.status, Status::kOk);
  EXPECT_EQ(result.raw, expected);
}

// Priorities are accepted and do not perturb results; the queue-delay
// estimate calibrates after traffic and reads zero when idle.
TEST(TypedSubmit, PriorityAcceptedAndDelayEstimateIdleZero) {
  const FixedNetwork engine = make_engine(9, 8, 6, 3);
  ServeConfig config;
  config.max_wait = 1ms;
  InferenceServer server(engine, config);
  EXPECT_EQ(server.estimated_queue_delay(), std::chrono::nanoseconds::zero());

  for (int priority : {0, 5, -3, 1}) {
    InferenceRequest request;
    request.payload =
        random_samples(1, engine.input_size(),
                       static_cast<std::uint64_t>(100 + priority));
    const auto expected = sequential_raw(engine, request.payload);
    request.priority = priority;
    const InferenceResult result = server.submit(std::move(request)).get();
    EXPECT_EQ(result.status, Status::kOk) << priority;
    EXPECT_EQ(result.raw, expected) << priority;
  }
  // Idle again: nothing queued, so the estimate must be zero.
  EXPECT_EQ(server.estimated_queue_delay(), std::chrono::nanoseconds::zero());
}

}  // namespace
}  // namespace man::serve
