// The batched runtime: bit-identity of the sharded path against the
// single-sample path under every alphabet scheme, exact stats
// reduction, determinism across worker counts, and the PrecomputerCache
// reuse API it is built on.
#include <gtest/gtest.h>

#include <vector>

#include "man/engine/batch_runner.h"
#include "man/engine/fixed_network.h"
#include "man/nn/activation_layer.h"
#include "man/nn/constraint_projection.h"
#include "man/nn/conv2d.h"
#include "man/nn/dense.h"
#include "man/nn/pool.h"
#include "man/util/rng.h"

namespace man::engine {
namespace {

using man::core::AlphabetSet;
using man::core::OpCounts;
using man::core::PrecomputerBank;
using man::core::PrecomputerCache;
using man::data::Example;
using man::nn::ActivationLayer;
using man::nn::AvgPool2D;
using man::nn::Conv2D;
using man::nn::Dense;
using man::nn::Network;
using man::nn::ProjectionPlan;
using man::nn::QuantSpec;

Network make_mlp(std::uint64_t seed, int in = 16, int hidden = 8,
                 int out = 4) {
  man::util::Rng rng(seed);
  Network net;
  net.add<Dense>(in, hidden).init_xavier(rng);
  net.add<ActivationLayer>(man::core::ActivationKind::kSigmoid);
  net.add<Dense>(hidden, out).init_xavier(rng);
  return net;
}

Network make_cnn(std::uint64_t seed) {
  man::util::Rng rng(seed);
  Network net;
  net.add<Conv2D>(1, 3, 3, 8, 8).init_xavier(rng);
  net.add<ActivationLayer>(man::core::ActivationKind::kSigmoid);
  net.add<AvgPool2D>(3, 6, 6, 2);
  net.add<Dense>(27, 5).init_xavier(rng);
  return net;
}

std::vector<float> random_batch(std::size_t samples, std::size_t sample_size,
                                std::uint64_t seed) {
  man::util::Rng rng(seed);
  std::vector<float> batch(samples * sample_size);
  for (float& p : batch) p = static_cast<float>(rng.next_double());
  return batch;
}

std::vector<Example> random_examples(std::size_t samples,
                                     std::size_t sample_size, int classes,
                                     std::uint64_t seed) {
  man::util::Rng rng(seed);
  std::vector<Example> examples(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    examples[i].pixels.resize(sample_size);
    for (float& p : examples[i].pixels) {
      p = static_cast<float>(rng.next_double());
    }
    examples[i].label = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(classes)));
  }
  return examples;
}

void expect_stats_eq(const EngineStats& a, const EngineStats& b) {
  EXPECT_EQ(a.inferences, b.inferences);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    EXPECT_EQ(a.layers[i].name, b.layers[i].name) << "layer " << i;
    EXPECT_EQ(a.layers[i].macs, b.layers[i].macs) << "layer " << i;
    EXPECT_EQ(a.layers[i].bank_activations, b.layers[i].bank_activations)
        << "layer " << i;
    EXPECT_EQ(a.layers[i].ops, b.layers[i].ops) << "layer " << i;
  }
}

// (a) The batched path is bit-identical to the single-sample path for
// every alphabet scheme (conventional + the full ASM ladder).
class BatchedSchemeIdentity : public ::testing::TestWithParam<int> {};

TEST_P(BatchedSchemeIdentity, BatchMatchesSequentialBitForBit) {
  const int n_alphabets = GetParam();  // 0 == conventional
  const QuantSpec spec = QuantSpec::bits8();

  Network net = make_mlp(100 + static_cast<std::uint64_t>(n_alphabets));
  LayerAlphabetPlan plan =
      LayerAlphabetPlan::conventional(net.num_weight_layers());
  if (n_alphabets > 0) {
    const AlphabetSet set =
        AlphabetSet::first_n(static_cast<std::size_t>(n_alphabets));
    const ProjectionPlan projection(spec, set, net.num_weight_layers());
    projection.project_network(net);
    plan = LayerAlphabetPlan::uniform_asm(net.num_weight_layers(), set);
  }
  FixedNetwork engine(net, spec, plan);

  const std::size_t samples = 33;  // not a multiple of the pool size
  const auto batch = random_batch(samples, engine.input_size(), 42);

  // Sequential reference through the single-sample wrapper.
  std::vector<std::int64_t> expected;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto raw = engine.forward_raw(
        std::span<const float>(batch).subspan(i * engine.input_size(),
                                              engine.input_size()));
    expected.insert(expected.end(), raw.begin(), raw.end());
  }

  BatchRunner runner(engine, BatchOptions{.workers = 4});
  std::vector<std::int64_t> actual(samples * engine.output_size());
  runner.run(batch, actual);

  EXPECT_EQ(actual, expected) << "n_alphabets=" << n_alphabets;
}

INSTANTIATE_TEST_SUITE_P(AlphabetLadder, BatchedSchemeIdentity,
                         ::testing::Values(0, 1, 2, 4, 8));

// Conv stages shard identically too.
TEST(BatchRunner, CnnBatchMatchesSequential) {
  const QuantSpec spec = QuantSpec::bits12();
  Network net = make_cnn(77);
  const ProjectionPlan projection(spec, AlphabetSet::two(), 2);
  projection.project_network(net);
  FixedNetwork engine(
      net, spec, LayerAlphabetPlan::uniform_asm(2, AlphabetSet::two()));

  const std::size_t samples = 9;
  const auto batch = random_batch(samples, engine.input_size(), 7);

  std::vector<std::int64_t> expected;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto raw = engine.forward_raw(
        std::span<const float>(batch).subspan(i * engine.input_size(),
                                              engine.input_size()));
    expected.insert(expected.end(), raw.begin(), raw.end());
  }

  BatchRunner runner(engine, BatchOptions{.workers = 3,
                                          .min_samples_per_worker = 1});
  std::vector<std::int64_t> actual(samples * engine.output_size());
  runner.run(batch, actual);
  EXPECT_EQ(actual, expected);
}

// (b) The merged EngineStats equal the sum of sequential runs.
TEST(BatchRunner, MergedStatsEqualSequentialSum) {
  const QuantSpec spec = QuantSpec::bits8();
  Network net = make_mlp(55);
  const ProjectionPlan projection(spec, AlphabetSet::four(), 2);
  projection.project_network(net);
  FixedNetwork engine(
      net, spec, LayerAlphabetPlan::uniform_asm(2, AlphabetSet::four()));

  const std::size_t samples = 25;
  const auto batch = random_batch(samples, engine.input_size(), 3);

  // Sequential run accumulates into the engine's member stats.
  engine.reset_stats();
  for (std::size_t i = 0; i < samples; ++i) {
    (void)engine.forward_raw(
        std::span<const float>(batch).subspan(i * engine.input_size(),
                                              engine.input_size()));
  }

  BatchRunner runner(engine, BatchOptions{.workers = 4,
                                          .min_samples_per_worker = 2});
  std::vector<std::int64_t> raw(samples * engine.output_size());
  runner.run(batch, raw);

  expect_stats_eq(runner.stats(), engine.stats());
  EXPECT_EQ(runner.stats().inferences, samples);
}

// (c) Worker count is invisible: 1, 2, and 8 workers produce identical
// outputs and identical merged stats.
TEST(BatchRunner, DeterministicAcrossWorkerCounts) {
  const QuantSpec spec = QuantSpec::bits8();
  Network net = make_mlp(66);
  const ProjectionPlan projection(spec, AlphabetSet::two(), 2);
  projection.project_network(net);
  FixedNetwork engine(
      net, spec, LayerAlphabetPlan::uniform_asm(2, AlphabetSet::two()));

  const std::size_t samples = 41;
  const auto batch = random_batch(samples, engine.input_size(), 11);

  std::vector<std::vector<std::int64_t>> outputs;
  std::vector<EngineStats> stats;
  for (int workers : {1, 2, 8}) {
    BatchRunner runner(engine, BatchOptions{.workers = workers,
                                            .min_samples_per_worker = 1});
    std::vector<std::int64_t> raw(samples * engine.output_size());
    runner.run(batch, raw);
    outputs.push_back(std::move(raw));
    stats.push_back(runner.stats());
  }
  for (std::size_t i = 1; i < outputs.size(); ++i) {
    EXPECT_EQ(outputs[i], outputs[0]) << "worker config " << i;
    expect_stats_eq(stats[i], stats[0]);
  }
}

// The Example-based evaluation path agrees with the engine's own.
TEST(BatchRunner, EvaluateMatchesSequentialEvaluate) {
  const QuantSpec spec = QuantSpec::bits8();
  Network net = make_mlp(88);
  FixedNetwork engine(net, spec, LayerAlphabetPlan::conventional(2));

  const auto examples = random_examples(30, engine.input_size(), 4, 5);
  const double sequential = engine.evaluate(examples);

  BatchRunner runner(engine, BatchOptions{.workers = 4,
                                          .min_samples_per_worker = 1});
  const BatchAccuracy batched = runner.evaluate(examples);
  EXPECT_DOUBLE_EQ(batched.accuracy, sequential);
  ASSERT_EQ(batched.predictions.size(), examples.size());
  for (std::size_t i = 0; i < examples.size(); ++i) {
    // Spot-check each prediction against the single-sample API.
    EXPECT_EQ(batched.predictions[i], engine.predict(examples[i]));
  }
}

// A scratch made by one engine must not leak its bank multiples into
// another engine's forward pass: infer_into re-binds foreign caches.
TEST(FixedNetwork, WrongEngineScratchIsRebound) {
  const QuantSpec spec = QuantSpec::bits8();
  Network net_a = make_mlp(70);
  Network net_b = make_mlp(71);
  const ProjectionPlan proj_a(spec, AlphabetSet::two(), 2);
  proj_a.project_network(net_a);
  const ProjectionPlan proj_b(spec, AlphabetSet::four(), 2);
  proj_b.project_network(net_b);
  FixedNetwork engine_a(
      net_a, spec, LayerAlphabetPlan::uniform_asm(2, AlphabetSet::two()));
  FixedNetwork engine_b(
      net_b, spec, LayerAlphabetPlan::uniform_asm(2, AlphabetSet::four()));

  const auto batch = random_batch(1, engine_b.input_size(), 17);
  const auto expected = engine_b.forward_raw(batch);

  FixedNetwork::InferScratch scratch = engine_a.make_scratch();
  EngineStats stats = engine_b.make_stats();
  std::vector<std::int64_t> actual(engine_b.output_size());
  engine_b.infer_into(batch, actual, stats, scratch);
  EXPECT_EQ(actual, expected);
}

// Stage-graph geometry is validated at construction: a mis-chained
// network throws instead of reading out of bounds at inference time.
TEST(FixedNetwork, RejectsMisChainedNetwork) {
  man::util::Rng rng(72);
  Network net;
  net.add<Dense>(16, 8).init_xavier(rng);
  net.add<Dense>(10, 4).init_xavier(rng);  // expects 10, gets 8
  EXPECT_THROW(FixedNetwork(net, QuantSpec::bits8(),
                            LayerAlphabetPlan::conventional(2)),
               std::invalid_argument);
}

TEST(BatchRunner, RejectsRaggedSpans) {
  Network net = make_mlp(90);
  FixedNetwork engine(net, QuantSpec::bits8(),
                      LayerAlphabetPlan::conventional(2));
  BatchRunner runner(engine);

  std::vector<float> ragged(engine.input_size() + 1);
  std::vector<std::int64_t> out(engine.output_size());
  EXPECT_THROW(runner.run(ragged, out), std::invalid_argument);

  std::vector<float> one(engine.input_size());
  std::vector<std::int64_t> short_out(engine.output_size() - 1);
  EXPECT_THROW(runner.run(one, short_out), std::invalid_argument);
}

// Regression: negative worker counts used to be silently cast to a
// huge unsigned shard count; now they are rejected up front.
TEST(BatchRunner, RejectsNegativeWorkerCount) {
  Network net = make_mlp(93);
  FixedNetwork engine(net, QuantSpec::bits8(),
                      LayerAlphabetPlan::conventional(2));
  EXPECT_THROW(BatchRunner(engine, BatchOptions{.workers = -1}),
               std::invalid_argument);
  EXPECT_THROW(BatchRunner(engine, BatchOptions{.workers = -8}),
               std::invalid_argument);
}

// The pool refactor's contract: a runner reused across many run()
// calls starts its worker threads exactly once.
TEST(BatchRunner, ReusedRunnerSpawnsNoThreadsPerRun) {
  Network net = make_mlp(94);
  FixedNetwork engine(net, QuantSpec::bits8(),
                      LayerAlphabetPlan::conventional(2));
  BatchRunner runner(engine, BatchOptions{.workers = 4,
                                          .min_samples_per_worker = 1});

  const auto batch = random_batch(16, engine.input_size(), 23);
  std::vector<std::int64_t> raw(16 * engine.output_size());
  for (int round = 0; round < 20; ++round) runner.run(batch, raw);

  ASSERT_NE(runner.pool(), nullptr);
  EXPECT_EQ(runner.pool()->size(), 4);
  EXPECT_EQ(runner.pool()->threads_started(), 4u);
}

// Several runners (the serving arrangement: many models, one process)
// share one persistent pool, and results stay bit-identical.
TEST(BatchRunner, RunnersShareOneProvidedPool) {
  Network net_a = make_mlp(95);
  Network net_b = make_mlp(96);
  FixedNetwork engine_a(net_a, QuantSpec::bits8(),
                        LayerAlphabetPlan::conventional(2));
  FixedNetwork engine_b(net_b, QuantSpec::bits8(),
                        LayerAlphabetPlan::conventional(2));

  const auto pool = std::make_shared<man::serve::ThreadPool>(3);
  const BatchOptions options{.workers = 8,  // capped at the pool size
                             .min_samples_per_worker = 1,
                             .pool = pool};
  BatchRunner runner_a(engine_a, options);
  BatchRunner runner_b(engine_b, options);
  EXPECT_EQ(runner_a.pool().get(), pool.get());
  EXPECT_EQ(runner_a.workers(), 3);

  const auto batch = random_batch(13, engine_a.input_size(), 29);
  std::vector<std::int64_t> raw_a(13 * engine_a.output_size());
  std::vector<std::int64_t> raw_b(13 * engine_b.output_size());
  for (int round = 0; round < 5; ++round) {
    runner_a.run(batch, raw_a);
    runner_b.run(batch, raw_b);
  }
  EXPECT_EQ(pool->threads_started(), 3u);

  // Shared-pool results match a sequential runner's.
  BatchRunner sequential(engine_a, BatchOptions{.workers = 1});
  std::vector<std::int64_t> expected(13 * engine_a.output_size());
  sequential.run(batch, expected);
  EXPECT_EQ(raw_a, expected);
}

TEST(BatchRunner, StatsAccumulateAcrossRunsAndReset) {
  Network net = make_mlp(91);
  FixedNetwork engine(net, QuantSpec::bits8(),
                      LayerAlphabetPlan::conventional(2));
  BatchRunner runner(engine, BatchOptions{.workers = 2,
                                          .min_samples_per_worker = 1});

  const auto batch = random_batch(6, engine.input_size(), 13);
  std::vector<std::int64_t> raw(6 * engine.output_size());
  runner.run(batch, raw);
  runner.run(batch, raw);
  EXPECT_EQ(runner.stats().inferences, 12u);

  runner.reset_stats();
  EXPECT_EQ(runner.stats().inferences, 0u);
  EXPECT_EQ(runner.stats().total_macs(), 0u);
  // Layer layout survives a reset.
  ASSERT_EQ(runner.stats().layers.size(), 2u);
}

// The per-shard CSHM memo: one structural evaluation per distinct
// input value, replayed from the cache afterwards.
TEST(PrecomputerCacheReuse, LookupMatchesBankAndCountsMissesOnce) {
  const PrecomputerBank bank(AlphabetSet::four());
  PrecomputerCache cache(bank);

  OpCounts cached_counts;
  OpCounts direct_counts;
  for (int round = 0; round < 3; ++round) {
    for (std::int64_t input : {-7, 0, 1, 5, 123}) {
      const std::int64_t* m = cache.lookup(input, cached_counts);
      const auto expected = bank.compute(input, direct_counts);
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(m[i], expected[i]) << "input " << input;
      }
    }
  }
  EXPECT_EQ(cache.entries(), 5u);
  EXPECT_EQ(cache.misses(), 5u);
  EXPECT_EQ(cache.hits(), 10u);
  // Adder activity charged once per distinct value, not per lookup.
  EXPECT_EQ(cached_counts.precomputer_adds,
            5u * static_cast<std::uint64_t>(bank.adder_count()));

  cache.reset();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(EngineStatsMerge, LayerwiseSumAndLayoutChecks) {
  Network net = make_mlp(92);
  FixedNetwork engine(net, QuantSpec::bits8(),
                      LayerAlphabetPlan::conventional(2));
  EngineStats a = engine.make_stats();
  EngineStats b = engine.make_stats();
  b.layers[0].macs = 7;
  b.inferences = 2;

  a.merge(b);
  a.merge(b);
  EXPECT_EQ(a.layers[0].macs, 14u);
  EXPECT_EQ(a.inferences, 4u);

  EngineStats empty;
  empty.merge(b);  // adopts the layout, zeroed, then adds
  EXPECT_EQ(empty.layers.size(), b.layers.size());
  EXPECT_EQ(empty.layers[0].macs, 7u);

  EngineStats mismatched;
  mismatched.layers.resize(3);
  EXPECT_THROW(mismatched.merge(b), std::invalid_argument);
}

}  // namespace
}  // namespace man::engine
