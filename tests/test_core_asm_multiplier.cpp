// ASM multiplier datapath emulation (paper §III, Fig 2). The central
// property: the datapath is EXACT on representable weights — all
// approximation lives in the weight constraint.
#include "man/core/asm_multiplier.h"

#include <gtest/gtest.h>

#include "man/util/rng.h"

namespace man::core {
namespace {

// Paper Table I, W1: 105·I = 2⁵·(3·I) + 2⁰·(9·I) with the full set.
TEST(AsmMultiplier, PaperTableOnePlan105) {
  const AsmMultiplier mult(QuartetLayout::bits8(), AlphabetSet::full());
  const auto plan = mult.plan(105);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].quartet_index, 0);
  EXPECT_EQ(plan[0].quartet_value, 9);
  EXPECT_EQ(plan[0].alphabet, 9);
  EXPECT_EQ(plan[0].total_shift, 0);
  EXPECT_EQ(plan[1].quartet_index, 1);
  EXPECT_EQ(plan[1].quartet_value, 6);
  EXPECT_EQ(plan[1].alphabet, 3);
  EXPECT_EQ(plan[1].total_shift, 5);  // 3·2⁵ = 96
}

// Paper Table I, W2: 66·I = 2⁶·I + 2¹·I.
TEST(AsmMultiplier, PaperTableOnePlan66) {
  const AsmMultiplier mult(QuartetLayout::bits8(), AlphabetSet::full());
  const auto plan = mult.plan(66);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].alphabet, 1);
  EXPECT_EQ(plan[0].total_shift, 1);
  EXPECT_EQ(plan[1].alphabet, 1);
  EXPECT_EQ(plan[1].total_shift, 6);
}

// Paper §III worked example: 01001010₂·M = (4M)·2⁴ + (10M)·2⁰ where
// 10M = 5M≪1 and 4M = 1M≪2 with the {1,3,5,7} set.
TEST(AsmMultiplier, PaperSectionThreeExample74) {
  const AsmMultiplier mult(QuartetLayout::bits8(), AlphabetSet::four());
  const auto plan = mult.plan(0b01001010);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].quartet_value, 10);
  EXPECT_EQ(plan[0].alphabet, 5);
  EXPECT_EQ(plan[0].alphabet_shift, 1);
  EXPECT_EQ(plan[0].total_shift, 1);
  EXPECT_EQ(plan[1].quartet_value, 4);
  EXPECT_EQ(plan[1].alphabet, 1);
  EXPECT_EQ(plan[1].total_shift, 6);  // 1·2²·2⁴
  EXPECT_EQ(mult.multiply(0b01001010, 123), 74 * 123);
}

TEST(AsmMultiplier, ZeroWeightHasEmptyPlanAndZeroProduct) {
  const AsmMultiplier mult(QuartetLayout::bits8(), AlphabetSet::man());
  EXPECT_TRUE(mult.plan(0).empty());
  EXPECT_EQ(mult.multiply(0, 9999), 0);
}

// THE exactness property: full alphabet set ⇒ every 8-bit weight
// multiplies exactly, for positive and negative weights and inputs.
TEST(AsmMultiplier, FullSetExactForAllWeights8Bit) {
  const AsmMultiplier mult(QuartetLayout::bits8(), AlphabetSet::full());
  man::util::Rng rng(7);
  for (int w = -127; w <= 127; ++w) {
    for (int trial = 0; trial < 8; ++trial) {
      const auto input = static_cast<std::int64_t>(rng.next_in(-4096, 4095));
      EXPECT_EQ(mult.multiply(w, input), static_cast<std::int64_t>(w) * input)
          << "w=" << w << " input=" << input;
    }
  }
}

// Exactness on *representable* weights for every ladder set.
class ExactnessSweep : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(ExactnessSweep, ExactOnRepresentableWeights) {
  const auto [bits, n_alphabets] = GetParam();
  const QuartetLayout layout(bits);
  const AlphabetSet set =
      AlphabetSet::first_n(static_cast<std::size_t>(n_alphabets));
  const AsmMultiplier mult(layout, set, UnsupportedPolicy::kThrow);
  const WeightConstraint wc(layout, set);
  man::util::Rng rng(13);
  for (int mag : wc.representable()) {
    for (int sign : {1, -1}) {
      const int w = sign * mag;
      const auto input = static_cast<std::int64_t>(rng.next_in(-255, 255));
      EXPECT_EQ(mult.multiply(w, input), static_cast<std::int64_t>(w) * input)
          << "w=" << w;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BitsTimesLadder, ExactnessSweep,
    ::testing::Combine(::testing::Values(8, 12),
                       ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8)));

// Unsupported weights: kConstrainFirst multiplies the constrained
// weight; kThrow throws.
TEST(AsmMultiplier, UnsupportedPolicyBehaviour) {
  const QuartetLayout layout = QuartetLayout::bits8();
  const AlphabetSet& man_set = AlphabetSet::man();
  const WeightConstraint wc(layout, man_set);
  const int unsupported = 0b0001001;  // R=9 unsupported under {1}

  const AsmMultiplier lenient(layout, man_set,
                              UnsupportedPolicy::kConstrainFirst);
  const int expected = wc.constrain(unsupported);
  EXPECT_EQ(lenient.multiply(unsupported, 100), expected * 100);

  const AsmMultiplier strict(layout, man_set, UnsupportedPolicy::kThrow);
  EXPECT_THROW((void)strict.multiply(unsupported, 100), std::domain_error);
  EXPECT_THROW((void)strict.plan(unsupported), std::domain_error);
}

TEST(AsmMultiplier, OpCountsMatchPlanShape) {
  const AsmMultiplier mult(QuartetLayout::bits8(), AlphabetSet::four());
  OpCounts counts;
  // 74 = two non-zero quartets: 2 selects, 2 shifts, 1 partial add;
  // the {1,3,5,7} bank uses 3 adders.
  (void)mult.multiply(74, 50, counts);
  EXPECT_EQ(counts.selects, 2u);
  EXPECT_EQ(counts.shifts, 2u);
  EXPECT_EQ(counts.adds, 1u);
  EXPECT_EQ(counts.negates, 0u);
  EXPECT_EQ(counts.precomputer_adds, 3u);

  OpCounts neg_counts;
  (void)mult.multiply(-74, 50, neg_counts);
  EXPECT_EQ(neg_counts.negates, 1u);
}

TEST(AsmMultiplier, MultiplyWithBankValidatesSize) {
  const AsmMultiplier mult(QuartetLayout::bits8(), AlphabetSet::two());
  OpCounts counts;
  const std::vector<std::int64_t> wrong_size{100};
  EXPECT_THROW((void)mult.multiply_with_bank(3, wrong_size, counts),
               std::invalid_argument);
}

TEST(AsmMultiplier, NegativeInputsHandled) {
  const AsmMultiplier mult(QuartetLayout::bits12(), AlphabetSet::two());
  const WeightConstraint wc(QuartetLayout::bits12(), AlphabetSet::two());
  for (int mag : {0, 1, 3, 48, 1056}) {
    ASSERT_TRUE(wc.is_representable(mag));
    EXPECT_EQ(mult.multiply(mag, -77), static_cast<std::int64_t>(mag) * -77);
    EXPECT_EQ(mult.multiply(-mag, -77), static_cast<std::int64_t>(-mag) * -77);
  }
}

// MAN ({1}) multiplies by any power-of-two-quartet weight exactly.
TEST(AsmMultiplier, ManMultipliesPowerOfTwoCombinations) {
  const AsmMultiplier mult(QuartetLayout::bits8(), AlphabetSet::man(),
                           UnsupportedPolicy::kThrow);
  for (int p : {0, 1, 2, 4}) {
    for (int r : {0, 1, 2, 4, 8}) {
      const int w = (p << 4) | r;
      EXPECT_EQ(mult.multiply(w, 33), static_cast<std::int64_t>(w) * 33);
    }
  }
}

}  // namespace
}  // namespace man::core
