// Tensor and shape semantics.
#include "man/nn/tensor.h"

#include <gtest/gtest.h>

namespace man::nn {
namespace {

TEST(Shape, BasicProperties) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(2), 4);
  EXPECT_EQ(s.elements(), 24u);
  EXPECT_EQ(s.to_string(), "[2x3x4]");
}

TEST(Shape, Validation) {
  EXPECT_THROW(Shape({}), std::invalid_argument);
  EXPECT_THROW(Shape({1, 2, 3, 4, 5}), std::invalid_argument);
  EXPECT_THROW(Shape({0}), std::invalid_argument);
  EXPECT_THROW(Shape({-1, 2}), std::invalid_argument);
  const Shape s{2};
  EXPECT_THROW((void)s.dim(1), std::out_of_range);
}

TEST(Tensor, ZeroInitialized) {
  const Tensor t(Shape{3, 3});
  EXPECT_EQ(t.size(), 9u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FromVectorAndArgmax) {
  Tensor t = Tensor::from_vector({0.5f, -1.0f, 3.0f, 2.0f});
  EXPECT_EQ(t.shape().rank(), 1);
  EXPECT_EQ(t.argmax(), 2);
  EXPECT_EQ(Tensor{}.argmax(), -1);
}

TEST(Tensor, DataShapeMismatchThrows) {
  EXPECT_THROW(Tensor(Shape{2, 2}, {1.0f}), std::invalid_argument);
}

TEST(Tensor, FillAndReshape) {
  Tensor t(Shape{2, 6});
  t.fill(2.5f);
  EXPECT_EQ(t[11], 2.5f);
  t.reshape(Shape{3, 4});
  EXPECT_EQ(t.shape(), (Shape{3, 4}));
  EXPECT_THROW(t.reshape(Shape{5}), std::invalid_argument);
}

TEST(Tensor, At3IndexesChannelRowCol) {
  Tensor t(Shape{2, 2, 3});
  t.at3(1, 1, 2, 2, 3) = 7.0f;
  // (c*height + h)*width + w = (1*2+1)*3+2 = 11
  EXPECT_EQ(t[11], 7.0f);
  EXPECT_EQ(t.at3(1, 1, 2, 2, 3), 7.0f);
}

}  // namespace
}  // namespace man::nn
