// Network-level energy accounting (Figs 9, 11).
#include "man/hw/network_cost.h"

#include <gtest/gtest.h>

namespace man::hw {
namespace {

using man::core::AlphabetSet;
using man::core::MultiplierKind;

NetworkEnergySpec two_layer_mlp() {
  NetworkEnergySpec spec;
  spec.name = "mlp";
  spec.weight_bits = 8;
  spec.layers = {
      {"hidden", 1024ull * 100, MultiplierKind::kExact, AlphabetSet::full()},
      {"output", 100ull * 10, MultiplierKind::kExact, AlphabetSet::full()},
  };
  return spec;
}

TEST(NetworkCost, TotalMacs) {
  EXPECT_EQ(two_layer_mlp().total_macs(), 1024ull * 100 + 100 * 10);
}

TEST(NetworkCost, EnergySumsLayerEnergies) {
  const auto report = compute_network_energy(two_layer_mlp());
  ASSERT_EQ(report.layer_energy_pj.size(), 2u);
  EXPECT_NEAR(report.total_energy_pj,
              report.layer_energy_pj[0] + report.layer_energy_pj[1], 1e-9);
  EXPECT_GT(report.total_energy_pj, 0.0);
}

TEST(NetworkCost, CycleSharesSumToOne) {
  const auto report = compute_network_energy(two_layer_mlp());
  double total = 0.0;
  for (double share : report.layer_cycle_share) total += share;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // The hidden layer dominates (102400 of 103400 MACs).
  EXPECT_GT(report.layer_cycle_share[0], 0.98);
}

TEST(NetworkCost, UniformManCheaperThanConventional) {
  const auto conv = compute_network_energy(two_layer_mlp());
  const auto man_spec = with_uniform_scheme(
      two_layer_mlp(), MultiplierKind::kMan, AlphabetSet::man());
  const auto man_report = compute_network_energy(man_spec);
  EXPECT_LT(man_report.total_energy_pj, conv.total_energy_pj);
  // Savings band mirrors the neuron-level MAN reduction (Fig 9 shows
  // network savings tracking the neuron savings).
  const double saving =
      1.0 - man_report.total_energy_pj / conv.total_energy_pj;
  EXPECT_NEAR(saving, 0.35, 0.10);
}

TEST(NetworkCost, MixedPlanCostsBetweenUniformExtremes) {
  // Fig 11 recipe: MAN everywhere except a 4-alphabet output layer.
  NetworkEnergySpec mixed = two_layer_mlp();
  mixed.layers[0].multiplier = MultiplierKind::kMan;
  mixed.layers[0].alphabets = AlphabetSet::man();
  mixed.layers[1].multiplier = MultiplierKind::kAsm;
  mixed.layers[1].alphabets = AlphabetSet::four();

  const auto man_only = compute_network_energy(with_uniform_scheme(
      two_layer_mlp(), MultiplierKind::kMan, AlphabetSet::man()));
  const auto conv = compute_network_energy(two_layer_mlp());
  const auto mixed_report = compute_network_energy(mixed);

  EXPECT_GT(mixed_report.total_energy_pj, man_only.total_energy_pj);
  EXPECT_LT(mixed_report.total_energy_pj, conv.total_energy_pj);
  // The overhead over MAN-only is small because the output layer is a
  // tiny share of the cycles (paper: "this increase is quite small in
  // practice").
  const double overhead = mixed_report.total_energy_pj /
                              man_only.total_energy_pj -
                          1.0;
  EXPECT_LT(overhead, 0.05);
}

TEST(NetworkCost, EmptyNetworkIsZero) {
  NetworkEnergySpec empty;
  empty.weight_bits = 8;
  const auto report = compute_network_energy(empty);
  EXPECT_EQ(report.total_energy_pj, 0.0);
  EXPECT_EQ(empty.total_macs(), 0u);
}

TEST(NetworkCost, LargerNetworksSaveProportionallyMore) {
  // Fig 9: "energy savings increases almost linearly with the increase
  // in NN size" — absolute savings scale with MAC count.
  NetworkEnergySpec small = two_layer_mlp();
  NetworkEnergySpec large = two_layer_mlp();
  for (auto& layer : large.layers) layer.macs *= 10;

  const auto small_conv = compute_network_energy(small);
  const auto small_man = compute_network_energy(with_uniform_scheme(
      small, MultiplierKind::kMan, AlphabetSet::man()));
  const auto large_conv = compute_network_energy(large);
  const auto large_man = compute_network_energy(with_uniform_scheme(
      large, MultiplierKind::kMan, AlphabetSet::man()));

  const double small_saving =
      small_conv.total_energy_pj - small_man.total_energy_pj;
  const double large_saving =
      large_conv.total_energy_pj - large_man.total_energy_pj;
  EXPECT_NEAR(large_saving / small_saving, 10.0, 0.2);
}

}  // namespace
}  // namespace man::hw
