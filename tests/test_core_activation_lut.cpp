// Differential lock-down of the integer-only FixedActivationLut fast
// path against the seed double round-trip (apply_raw_reference): the
// two must agree bit for bit on every raw accumulator value the
// engine can feed the LUT. The sweeps below are exhaustive over the
// clamp window (everything beyond it is saturated and spot-checked
// out to the extremes) for every activation kind × accumulator
// QFormat × address_bits combination the registered apps use, plus
// seam/boundary and fallback coverage for formats outside that set.
#include "man/core/activation.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "man/util/rng.h"

namespace man::core {
namespace {

using man::fixed::QFormat;

// Accumulator formats the apps reach: QFormat(30, wfrac + afrac) with
// 8-bit weights (Q1.6 × Q0.8 -> frac 14) and 12-bit weights
// (Q1.10 × Q0.8 -> frac 18); the engine's LUT output format is the
// activation format and address_bits is the default 10.
QFormat acc8() { return QFormat(30, 14); }
QFormat acc12() { return QFormat(30, 18); }

// Exhaustive agreement over [lo, hi] plus saturation samples outside.
void expect_identical_over(const FixedActivationLut& lut, std::int64_t lo,
                           std::int64_t hi) {
  for (std::int64_t raw = lo; raw <= hi; ++raw) {
    ASSERT_EQ(lut.apply_raw(raw), lut.apply_raw_reference(raw))
        << "raw=" << raw;
  }
  // Beyond the window everything saturates; probe out to the widest
  // accumulators the engine can produce and the int64 extremes.
  for (std::int64_t raw :
       {hi + 1, hi + 7, std::int64_t{1} << 29, std::int64_t{1} << 40,
        std::numeric_limits<std::int64_t>::max()}) {
    ASSERT_EQ(lut.apply_raw(raw), lut.apply_raw_reference(raw))
        << "raw=" << raw;
    ASSERT_EQ(lut.apply_raw(-raw), lut.apply_raw_reference(-raw))
        << "raw=" << -raw;
  }
}

TEST(FixedActivationLutInteger, ExhaustiveOverAppCombinations) {
  const QFormat out = QFormat::input8();
  for (const QFormat& acc : {acc8(), acc12()}) {
    for (ActivationKind kind :
         {ActivationKind::kTanh, ActivationKind::kSigmoid,
          ActivationKind::kRelu, ActivationKind::kIdentity}) {
      const FixedActivationLut lut(kind, acc, out, /*address_bits=*/10);
      ASSERT_TRUE(lut.integer_path_enabled())
          << to_string(kind) << " over " << acc.to_string();
      // The window is [-8·2^frac, +8·2^frac]; sweep a margin past it.
      expect_identical_over(lut, lut.raw_clamp_lo() - 1024,
                            lut.raw_clamp_hi() + 1024);
    }
  }
}

// Every bucket seam of every app combination: the index formula's
// rounding must tip at exactly the same raw value as lround. (The
// exhaustive sweep above covers these too; this test names the
// failure mode precisely when it regresses.)
TEST(FixedActivationLutInteger, BucketSeamsAndClampEdges) {
  const QFormat out = QFormat::input8();
  for (const QFormat& acc : {acc8(), acc12()}) {
    const FixedActivationLut lut(ActivationKind::kTanh, acc, out, 10);
    ASSERT_TRUE(lut.integer_path_enabled());
    const std::int64_t c = lut.raw_clamp_hi();
    const auto n_minus_1 =
        static_cast<std::int64_t>(lut.table_size()) - 1;
    for (std::int64_t i = 1; i <= n_minus_1; ++i) {
      // Raw value nearest the half-way point between buckets i-1, i.
      const auto seam = static_cast<std::int64_t>(
          ((2 * i - 1) * c + n_minus_1 / 2) / n_minus_1 - c);
      for (std::int64_t raw = seam - 2; raw <= seam + 2; ++raw) {
        ASSERT_EQ(lut.apply_raw(raw), lut.apply_raw_reference(raw))
            << "seam " << i << " raw=" << raw;
      }
    }
    for (std::int64_t delta = -2; delta <= 2; ++delta) {
      EXPECT_EQ(lut.apply_raw(-c + delta), lut.apply_raw_reference(-c + delta));
      EXPECT_EQ(lut.apply_raw(c + delta), lut.apply_raw_reference(c + delta));
    }
    EXPECT_EQ(lut.apply_raw(lut.raw_clamp_lo() - 1), lut.apply_raw(-c));
    EXPECT_EQ(lut.apply_raw(lut.raw_clamp_hi() + 1), lut.apply_raw(c));
  }
}

// Non-default address widths and coarse/fine fraction counts stay
// bit-identical too (exhaustive where the window is small, seam-dense
// sampling otherwise).
TEST(FixedActivationLutInteger, NonDefaultAddressBitsAndFormats) {
  const QFormat out = QFormat::input8();
  for (int address_bits : {4, 8, 12}) {
    for (const QFormat& acc :
         {QFormat(30, 6), QFormat(30, 14), QFormat(16, 10)}) {
      const FixedActivationLut lut(ActivationKind::kSigmoid, acc, out,
                                   address_bits);
      ASSERT_TRUE(lut.integer_path_enabled())
          << address_bits << "b over " << acc.to_string();
      const std::int64_t window = lut.raw_clamp_hi() - lut.raw_clamp_lo();
      if (window <= (1 << 16)) {
        expect_identical_over(lut, lut.raw_clamp_lo() - 64,
                              lut.raw_clamp_hi() + 64);
      } else {
        man::util::Rng rng(77);
        for (int probe = 0; probe < 50000; ++probe) {
          const std::int64_t raw = rng.next_in(lut.raw_clamp_lo() - 1024,
                                               lut.raw_clamp_hi() + 1024);
          ASSERT_EQ(lut.apply_raw(raw), lut.apply_raw_reference(raw))
              << "raw=" << raw;
        }
      }
    }
  }
}

// A clip that is not a power of two breaks the exactness proof: the
// constructor must fall back to the reference path — and apply_raw is
// then the reference, so the contract (bit-identical outputs) holds
// trivially.
TEST(FixedActivationLutInteger, NonPowerOfTwoClipFallsBack) {
  const FixedActivationLut lut(ActivationKind::kTanh, acc8(),
                               QFormat::input8(), 10, /*clip=*/6.0);
  EXPECT_FALSE(lut.integer_path_enabled());
  man::util::Rng rng(5);
  for (int probe = 0; probe < 10000; ++probe) {
    const std::int64_t raw = rng.next_in(-(std::int64_t{1} << 20),
                                         std::int64_t{1} << 20);
    ASSERT_EQ(lut.apply_raw(raw), lut.apply_raw_reference(raw));
  }
}

// A fractional clip whose raw-domain edge is not an integer must also
// fall back (e.g. clip·2^frac < 1).
TEST(FixedActivationLutInteger, SubResolutionClipFallsBack) {
  const FixedActivationLut lut(ActivationKind::kIdentity, QFormat(8, 0),
                               QFormat::input8(), 4, /*clip=*/0.25);
  EXPECT_FALSE(lut.integer_path_enabled());
  for (std::int64_t raw = -16; raw <= 16; ++raw) {
    ASSERT_EQ(lut.apply_raw(raw), lut.apply_raw_reference(raw));
  }
}

// Power-of-two clips other than the default 8.0 keep the fast path.
TEST(FixedActivationLutInteger, AlternatePowerOfTwoClips) {
  for (double clip : {2.0, 4.0, 16.0}) {
    const FixedActivationLut lut(ActivationKind::kTanh, QFormat(24, 10),
                                 QFormat::input8(), 8, clip);
    ASSERT_TRUE(lut.integer_path_enabled()) << "clip=" << clip;
    expect_identical_over(lut, lut.raw_clamp_lo() - 256,
                          lut.raw_clamp_hi() + 256);
  }
}

}  // namespace
}  // namespace man::core
