// Weight constraining (paper §IV.A, Algorithm 1): nearest-supported
// rounding with midpoint-up thresholds, representability, and the
// hierarchical variant.
#include "man/core/weight_constraint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace man::core {
namespace {

// Paper's Rounding Logic example: supported neighbours 8 and 12 under
// {1,3}; threshold (8+12)/2 = 10; 9 -> 8, 10 -> 12, 11 -> 12.
TEST(RoundQuartet, PaperThresholdExample) {
  const AlphabetSet& two = AlphabetSet::two();
  EXPECT_EQ(round_quartet_to_supported(9, 4, two), 8);
  EXPECT_EQ(round_quartet_to_supported(10, 4, two), 12);
  EXPECT_EQ(round_quartet_to_supported(11, 4, two), 12);
}

TEST(RoundQuartet, SupportedValuesPassThrough) {
  const AlphabetSet& two = AlphabetSet::two();
  for (int v : two.supported_values(4)) {
    EXPECT_EQ(round_quartet_to_supported(v, 4, two), v);
  }
}

TEST(RoundQuartet, CanRoundUpIntoCarry) {
  // {1}: supported {0,1,2,4,8}; 13,14,15 are above (8+16)/2 = 12, so
  // they round up to 16 — a carry into the next quartet.
  const AlphabetSet& man = AlphabetSet::man();
  EXPECT_EQ(round_quartet_to_supported(13, 4, man), 16);
  EXPECT_EQ(round_quartet_to_supported(15, 4, man), 16);
  // 9,10,11 are below 12 -> down to 8; 12 is at the threshold -> up.
  EXPECT_EQ(round_quartet_to_supported(9, 4, man), 8);
  EXPECT_EQ(round_quartet_to_supported(11, 4, man), 8);
  EXPECT_EQ(round_quartet_to_supported(12, 4, man), 16);
}

TEST(RoundQuartet, RejectsBadArguments) {
  EXPECT_THROW((void)round_quartet_to_supported(16, 4, AlphabetSet::man()),
               std::out_of_range);
  EXPECT_THROW((void)round_quartet_to_supported(-1, 4, AlphabetSet::man()),
               std::out_of_range);
  EXPECT_THROW((void)round_quartet_to_supported(1, 5, AlphabetSet::man()),
               std::invalid_argument);
}

TEST(WeightConstraint, RepresentableCountsMatchCombinatorics) {
  // 8-bit, {1,3}: R has 8 supported values, P has 6 -> 48 magnitudes.
  const WeightConstraint wc8(QuartetLayout::bits8(), AlphabetSet::two());
  EXPECT_EQ(wc8.representable().size(), 48u);
  // 12-bit, {1,3}: R and Q have 8 each, P has 6 -> 384.
  const WeightConstraint wc12(QuartetLayout::bits12(), AlphabetSet::two());
  EXPECT_EQ(wc12.representable().size(), 384u);
  // Full set: everything representable.
  const WeightConstraint wcf(QuartetLayout::bits8(), AlphabetSet::full());
  EXPECT_EQ(wcf.representable().size(), 128u);
  EXPECT_EQ(wcf.mean_absolute_error(), 0.0);
}

TEST(WeightConstraint, ConstrainIsIdempotentAndRepresentable) {
  for (const AlphabetSet& set :
       {AlphabetSet::man(), AlphabetSet::two(), AlphabetSet::four()}) {
    const WeightConstraint wc(QuartetLayout::bits8(), set);
    for (int mag = 0; mag <= 127; ++mag) {
      const int c = wc.constrain_magnitude(mag);
      EXPECT_TRUE(wc.is_representable(c)) << set.to_string() << " " << mag;
      EXPECT_EQ(wc.constrain_magnitude(c), c);
    }
  }
}

// Brute-force reference: nearest representable with midpoint-up.
int brute_force_nearest(const WeightConstraint& wc, int mag) {
  const auto& rep = wc.representable();
  int best = rep.front();
  long best_dist = std::labs(mag - best);
  for (int r : rep) {
    const long dist = std::labs(mag - r);
    // Midpoint up: prefer the larger value on ties.
    if (dist < best_dist || (dist == best_dist && r > best)) {
      best = r;
      best_dist = dist;
    }
  }
  return best;
}

class ConstraintSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ConstraintSweep, LutMatchesBruteForceNearest) {
  const auto [bits, n_alphabets] = GetParam();
  const WeightConstraint wc(QuartetLayout(bits),
                            AlphabetSet::first_n(
                                static_cast<std::size_t>(n_alphabets)));
  const int max_mag = wc.layout().max_magnitude();
  for (int mag = 0; mag <= max_mag; ++mag) {
    EXPECT_EQ(wc.constrain_magnitude(mag), brute_force_nearest(wc, mag))
        << "bits=" << bits << " n=" << n_alphabets << " mag=" << mag;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BitsTimesLadder, ConstraintSweep,
    ::testing::Combine(::testing::Values(8, 12),
                       ::testing::Values(1, 2, 4, 8)));

TEST_P(ConstraintSweep, HierarchicalIsRepresentableAndClose) {
  const auto [bits, n_alphabets] = GetParam();
  const WeightConstraint wc(QuartetLayout(bits),
                            AlphabetSet::first_n(
                                static_cast<std::size_t>(n_alphabets)));
  const int max_mag = wc.layout().max_magnitude();
  double nearest_error = 0.0;
  double hier_error = 0.0;
  for (int mag = 0; mag <= max_mag; ++mag) {
    const int hier = wc.constrain_magnitude_hierarchical(mag);
    ASSERT_TRUE(wc.is_representable(hier)) << "mag=" << mag;
    nearest_error += std::abs(mag - wc.constrain_magnitude(mag));
    hier_error += std::abs(mag - hier);
  }
  // Greedy per-quartet rounding (the paper's Algorithm 1 shape) is
  // never better than true-nearest. It can be notably worse where a
  // round-up carry lands on an unsupported neighbour (measured worst
  // case: ~2.9x total error at 12-bit {1,3,5,7}); bound it at 3x.
  EXPECT_GE(hier_error, nearest_error);
  if (nearest_error > 0.0) {
    EXPECT_LE(hier_error, 3.0 * nearest_error)
        << "bits=" << bits << " n=" << n_alphabets;
  }
}

TEST(WeightConstraint, SignedConstrainPreservesSign) {
  const WeightConstraint wc(QuartetLayout::bits8(), AlphabetSet::two());
  for (int w = -127; w <= 127; ++w) {
    const int c = wc.constrain(w);
    EXPECT_TRUE(wc.is_weight_representable(c));
    if (w > 0) EXPECT_GE(c, 0);
    if (w < 0) EXPECT_LE(c, 0);
    EXPECT_EQ(wc.constrain(-w), -c);  // odd symmetry
  }
}

TEST(WeightConstraint, SaturatesOutOfRangeWeights) {
  const WeightConstraint wc(QuartetLayout::bits8(), AlphabetSet::two());
  EXPECT_EQ(wc.constrain(1000), wc.max_representable());
  EXPECT_EQ(wc.constrain(-1000), -wc.max_representable());
}

TEST(WeightConstraint, MeanErrorShrinksWithMoreAlphabets) {
  double previous = 1e9;
  for (std::size_t n : {1u, 2u, 4u, 8u}) {
    const WeightConstraint wc(QuartetLayout::bits8(),
                              AlphabetSet::first_n(n));
    EXPECT_LT(wc.mean_absolute_error(), previous) << "n=" << n;
    previous = wc.mean_absolute_error();
  }
}

TEST(WeightConstraint, TwelveBitMaxRepresentableIsSane) {
  // {1}: top quartet P supports {0,1,2,4}, Q and R support
  // {0,1,2,4,8} -> max = 4<<8 | 8<<4 | 8 = 1160.
  const WeightConstraint wc(QuartetLayout::bits12(), AlphabetSet::man());
  EXPECT_EQ(wc.max_representable(), (4 << 8) | (8 << 4) | 8);
}

TEST(WeightConstraint, ConstrainMagnitudeRejectsOutOfRange) {
  const WeightConstraint wc(QuartetLayout::bits8(), AlphabetSet::man());
  EXPECT_THROW((void)wc.constrain_magnitude(-1), std::out_of_range);
  EXPECT_THROW((void)wc.constrain_magnitude(128), std::out_of_range);
}

}  // namespace
}  // namespace man::core
