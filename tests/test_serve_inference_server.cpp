// The serving front-end: deadline and queue edge cases (expired
// deadline, oversized request, empty input, shutdown drain) and the
// acceptance property — server responses bit-identical to sequential
// FixedNetwork::infer_into for interleaved mixed-model traffic from
// concurrent clients, at any worker count.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "man/engine/fixed_network.h"
#include "man/nn/activation_layer.h"
#include "man/nn/constraint_projection.h"
#include "man/nn/dense.h"
#include "man/serve/inference_server.h"
#include "man/serve/thread_pool.h"
#include "man/util/rng.h"

namespace man::serve {
namespace {

using namespace std::chrono_literals;
using man::core::AlphabetSet;
using man::engine::FixedNetwork;
using man::engine::LayerAlphabetPlan;
using man::nn::ActivationLayer;
using man::nn::Dense;
using man::nn::Network;
using man::nn::ProjectionPlan;
using man::nn::QuantSpec;

Network make_mlp(std::uint64_t seed, int in, int hidden, int out) {
  man::util::Rng rng(seed);
  Network net;
  net.add<Dense>(in, hidden).init_xavier(rng);
  net.add<ActivationLayer>(man::core::ActivationKind::kSigmoid);
  net.add<Dense>(hidden, out).init_xavier(rng);
  return net;
}

/// A small ASM engine ("digit-like" or "face-like" depending on the
/// geometry) with projected weights, as the serving path would get
/// from the EngineCache.
FixedNetwork make_engine(std::uint64_t seed, int in, int hidden, int out,
                         const AlphabetSet& set) {
  const QuantSpec spec = QuantSpec::bits8();
  Network net = make_mlp(seed, in, hidden, out);
  const ProjectionPlan projection(spec, set, net.num_weight_layers());
  projection.project_network(net);
  return FixedNetwork(net, spec,
                      LayerAlphabetPlan::uniform_asm(net.num_weight_layers(),
                                                     set));
}

std::vector<float> random_samples(std::size_t count, std::size_t sample_size,
                                  std::uint64_t seed) {
  man::util::Rng rng(seed);
  std::vector<float> pixels(count * sample_size);
  for (float& p : pixels) p = static_cast<float>(rng.next_double());
  return pixels;
}

/// Sequential ground truth: one sample at a time through infer_into
/// with fresh scratch, exactly the pre-serving code path.
std::vector<std::int64_t> sequential_raw(const FixedNetwork& engine,
                                         std::span<const float> pixels) {
  const std::size_t count = pixels.size() / engine.input_size();
  std::vector<std::int64_t> raw(count * engine.output_size());
  auto stats = engine.make_stats();
  auto scratch = engine.make_scratch();
  for (std::size_t i = 0; i < count; ++i) {
    engine.infer_into(
        pixels.subspan(i * engine.input_size(), engine.input_size()),
        std::span<std::int64_t>(raw).subspan(i * engine.output_size(),
                                             engine.output_size()),
        stats, scratch);
  }
  return raw;
}

TEST(InferenceServer, RejectsInvalidOptions) {
  const FixedNetwork engine = make_engine(1, 8, 6, 3, AlphabetSet::man());
  ServerOptions zero_batch;
  zero_batch.max_batch = 0;
  EXPECT_THROW(InferenceServer(engine, zero_batch), std::invalid_argument);
  ServerOptions negative_wait;
  negative_wait.max_wait = -1us;
  EXPECT_THROW(InferenceServer(engine, negative_wait), std::invalid_argument);
}

TEST(InferenceServer, RejectsEmptyAndRaggedRequests) {
  const FixedNetwork engine = make_engine(2, 8, 6, 3, AlphabetSet::man());
  InferenceServer server(engine);
  EXPECT_THROW((void)server.submit({}), std::invalid_argument);
  std::vector<float> ragged(engine.input_size() + 1, 0.5f);
  EXPECT_THROW((void)server.submit(ragged), std::invalid_argument);
}

// A deadline already in the past is a flush-now hint, not a drop: the
// request is still served, promptly and correctly.
TEST(InferenceServer, ExpiredDeadlineIsServedImmediately) {
  const FixedNetwork engine = make_engine(3, 8, 6, 3, AlphabetSet::two());
  ServerOptions options;
  options.max_batch = 64;      // far from full
  options.max_wait = 10s;      // default deadline would be far away
  InferenceServer server(engine, options);

  const auto pixels = random_samples(1, engine.input_size(), 30);
  auto future = server.submit(
      pixels, InferenceServer::Clock::now() - 1s);
  ASSERT_EQ(future.wait_for(5s), std::future_status::ready);
  const InferenceResult result = future.get();
  EXPECT_EQ(result.samples, 1u);
  EXPECT_EQ(result.raw, sequential_raw(engine, pixels));
}

// A request larger than max_batch is never split or rejected: it is
// dispatched alone as one oversized batch.
TEST(InferenceServer, OversizedRequestDispatchedWhole) {
  const FixedNetwork engine = make_engine(4, 8, 6, 3, AlphabetSet::two());
  ServerOptions options;
  options.max_batch = 4;
  options.max_wait = 1ms;
  InferenceServer server(engine, options);

  const std::size_t count = 11;  // ~3x max_batch
  const auto pixels = random_samples(count, engine.input_size(), 31);
  const InferenceResult result = server.submit(pixels).get();

  EXPECT_EQ(result.samples, count);
  EXPECT_EQ(result.raw, sequential_raw(engine, pixels));
  const auto metrics = server.metrics();
  EXPECT_EQ(metrics.batches, 1u);
  EXPECT_EQ(metrics.largest_batch, count);
}

// Filling the queue to max_batch flushes without waiting for the
// deadline: with a 1-hour deadline, completion at all proves the
// size trigger.
TEST(InferenceServer, FullBatchFlushesBeforeDeadline) {
  const FixedNetwork engine = make_engine(5, 8, 6, 3, AlphabetSet::man());
  ServerOptions options;
  options.max_batch = 8;
  options.max_wait = 1h;
  InferenceServer server(engine, options);

  std::vector<std::future<InferenceResult>> pending;
  std::vector<std::vector<float>> inputs;
  for (std::size_t i = 0; i < options.max_batch; ++i) {
    inputs.push_back(random_samples(1, engine.input_size(), 100 + i));
    pending.push_back(server.submit(inputs.back()));
  }
  for (std::size_t i = 0; i < pending.size(); ++i) {
    ASSERT_EQ(pending[i].wait_for(30s), std::future_status::ready) << i;
    EXPECT_EQ(pending[i].get().raw, sequential_raw(engine, inputs[i])) << i;
  }
  const auto metrics = server.metrics();
  EXPECT_GE(metrics.size_flushes, 1u);
  EXPECT_EQ(metrics.samples, options.max_batch);
}

// A lone request in a huge-batch server is released by its deadline.
TEST(InferenceServer, DeadlineFlushesPartialBatch) {
  const FixedNetwork engine = make_engine(6, 8, 6, 3, AlphabetSet::man());
  ServerOptions options;
  options.max_batch = 1u << 20;
  options.max_wait = 2ms;
  InferenceServer server(engine, options);

  const auto pixels = random_samples(1, engine.input_size(), 40);
  auto future = server.submit(pixels);
  ASSERT_EQ(future.wait_for(30s), std::future_status::ready);
  EXPECT_EQ(future.get().raw, sequential_raw(engine, pixels));
  EXPECT_GE(server.metrics().deadline_flushes, 1u);
}

// Regression: explicit deadlines need not arrive in order. A
// newcomer with a tight deadline must flush the queue even though the
// front request could wait an hour.
TEST(InferenceServer, EarlierDeadlineDeepInQueueTriggersFlush) {
  const FixedNetwork engine = make_engine(9, 8, 6, 3, AlphabetSet::man());
  ServerOptions options;
  options.max_batch = 1u << 20;  // size never triggers
  options.max_wait = 1h;
  InferenceServer server(engine, options);

  const auto patient_pixels = random_samples(1, engine.input_size(), 60);
  const auto urgent_pixels = random_samples(1, engine.input_size(), 61);
  auto patient = server.submit(patient_pixels,
                               InferenceServer::Clock::now() + 1h);
  auto urgent = server.submit(urgent_pixels,
                              InferenceServer::Clock::now() + 2ms);

  // The urgent deadline releases both: batches close oldest-first, so
  // the patient request ships in the same flush.
  ASSERT_EQ(urgent.wait_for(30s), std::future_status::ready);
  ASSERT_EQ(patient.wait_for(30s), std::future_status::ready);
  EXPECT_EQ(urgent.get().raw, sequential_raw(engine, urgent_pixels));
  EXPECT_EQ(patient.get().raw, sequential_raw(engine, patient_pixels));
  EXPECT_GE(server.metrics().deadline_flushes, 1u);
}

TEST(InferenceServer, ShutdownDrainsPendingAndRejectsNewWork) {
  const FixedNetwork engine = make_engine(7, 8, 6, 3, AlphabetSet::man());
  ServerOptions options;
  options.max_batch = 1u << 20;  // only the drain can release these
  options.max_wait = 1h;
  InferenceServer server(engine, options);

  std::vector<std::future<InferenceResult>> pending;
  std::vector<std::vector<float>> inputs;
  for (int i = 0; i < 5; ++i) {
    inputs.push_back(random_samples(1, engine.input_size(), 200 + i));
    pending.push_back(server.submit(inputs[static_cast<std::size_t>(i)]));
  }
  server.shutdown();
  for (std::size_t i = 0; i < pending.size(); ++i) {
    ASSERT_EQ(pending[i].wait_for(0s), std::future_status::ready) << i;
    EXPECT_EQ(pending[i].get().raw, sequential_raw(engine, inputs[i])) << i;
  }
  EXPECT_THROW((void)server.submit(random_samples(1, engine.input_size(), 9)),
               std::runtime_error);
  server.shutdown();  // idempotent
}

TEST(InferenceServer, PredictionsUseSharedArgmax) {
  const FixedNetwork engine = make_engine(8, 8, 6, 3, AlphabetSet::two());
  InferenceServer server(engine);
  const auto pixels = random_samples(6, engine.input_size(), 50);
  const InferenceResult result = server.submit(pixels).get();
  ASSERT_EQ(result.predictions.size(), 6u);
  for (std::size_t s = 0; s < result.samples; ++s) {
    EXPECT_EQ(result.predictions[s],
              man::engine::argmax_raw(
                  std::span<const std::int64_t>(result.raw)
                      .subspan(s * result.output_size, result.output_size)));
  }
  // Served activity is visible through the stats snapshot.
  EXPECT_EQ(server.stats().inferences, 6u);
}

// Acceptance: two models ("digit" 16->4 and "face" 25->2) served from
// one process on one shared pool, hammered by concurrent clients with
// interleaved single-sample and batch requests — every response must
// be bit-identical to the sequential engine path, for any worker
// count.
class MixedTrafficBitIdentity : public ::testing::TestWithParam<int> {};

TEST_P(MixedTrafficBitIdentity, ServerMatchesSequentialEngine) {
  const int workers = GetParam();
  const FixedNetwork digit = make_engine(10, 16, 8, 4, AlphabetSet::four());
  const FixedNetwork face = make_engine(11, 25, 6, 2, AlphabetSet::man());

  const auto pool = std::make_shared<ThreadPool>(workers);
  ServerOptions options;
  options.max_batch = 16;
  options.max_wait = 200us;
  options.batch.workers = workers;
  options.batch.pool = pool;
  options.batch.min_samples_per_worker = 1;
  InferenceServer digit_server(digit, options);
  InferenceServer face_server(face, options);

  struct Exchange {
    const FixedNetwork* engine;
    std::vector<float> pixels;
    InferenceResult result;
  };
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 48;
  std::vector<std::vector<Exchange>> exchanges(kClients);

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      man::util::Rng rng(1000 + static_cast<std::uint64_t>(c));
      auto& log = exchanges[static_cast<std::size_t>(c)];
      log.reserve(kRequestsPerClient);
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const bool to_digit = (r + c) % 2 == 0;
        const FixedNetwork& engine = to_digit ? digit : face;
        InferenceServer& server = to_digit ? digit_server : face_server;
        const std::size_t count = 1 + rng.next_below(3);  // 1..3 samples
        std::vector<float> pixels(count * engine.input_size());
        for (float& p : pixels) p = static_cast<float>(rng.next_double());
        auto future = server.submit(pixels);
        log.push_back(Exchange{&engine, std::move(pixels), future.get()});
      }
    });
  }
  for (auto& t : clients) t.join();

  // Verify on the main thread against the sequential reference.
  for (int c = 0; c < kClients; ++c) {
    for (std::size_t r = 0; r < exchanges[static_cast<std::size_t>(c)].size();
         ++r) {
      const Exchange& x = exchanges[static_cast<std::size_t>(c)][r];
      EXPECT_EQ(x.result.raw, sequential_raw(*x.engine, x.pixels))
          << "client " << c << " request " << r << " workers " << workers;
    }
  }

  // The whole run used only the shared pool's fixed threads.
  EXPECT_EQ(pool->threads_started(), static_cast<std::uint64_t>(workers));
  const auto digit_metrics = digit_server.metrics();
  const auto face_metrics = face_server.metrics();
  EXPECT_EQ(digit_metrics.requests + face_metrics.requests,
            static_cast<std::uint64_t>(kClients * kRequestsPerClient));
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, MixedTrafficBitIdentity,
                         ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace man::serve
