// Constraint projection (Algorithm 1 applied during training) and the
// Algorithm 2 methodology loop.
#include <gtest/gtest.h>

#include "man/nn/activation_layer.h"
#include "man/nn/algorithm2.h"
#include "man/nn/dense.h"
#include "man/nn/network.h"
#include "man/nn/sgd.h"
#include "man/nn/trainer.h"
#include "man/util/rng.h"

namespace man::nn {
namespace {

using man::core::AlphabetSet;
using man::core::QuartetLayout;
using man::core::WeightConstraint;
using man::data::Example;

std::vector<Example> make_blobs(int per_class, std::uint64_t seed) {
  man::util::Rng rng(seed);
  std::vector<Example> examples;
  for (int i = 0; i < per_class; ++i) {
    for (int label = 0; label < 2; ++label) {
      const double cx = label == 0 ? 0.25 : 0.75;
      Example ex;
      ex.pixels = {static_cast<float>(cx + rng.next_gaussian() * 0.08),
                   static_cast<float>(cx + rng.next_gaussian() * 0.08)};
      ex.label = label;
      examples.push_back(ex);
    }
  }
  return examples;
}

Network make_mlp(std::uint64_t seed) {
  man::util::Rng rng(seed);
  Network net;
  net.add<Dense>(2, 8).init_xavier(rng);
  net.add<ActivationLayer>(man::core::ActivationKind::kSigmoid);
  net.add<Dense>(8, 2).init_xavier(rng);
  return net;
}

TEST(ProjectionPlan, ProjectedWeightsAreRepresentable) {
  const QuantSpec spec = QuantSpec::bits8();
  const ProjectionPlan plan(spec, AlphabetSet::man(), 2);
  const WeightConstraint wc(QuartetLayout::bits8(), AlphabetSet::man());

  man::util::Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const float w = static_cast<float>(rng.next_double_in(-2.5, 2.5));
    const float projected = plan.project_weight(0, w);
    const auto raw = spec.weight_format.quantize(projected);
    EXPECT_TRUE(wc.is_weight_representable(raw)) << "w=" << w;
    // Idempotence.
    EXPECT_EQ(plan.project_weight(0, projected), projected);
  }
}

TEST(ProjectionPlan, FullSetProjectionIsPlainQuantization) {
  const QuantSpec spec = QuantSpec::bits8();
  const ProjectionPlan plan(spec, AlphabetSet::full(), 1);
  man::util::Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const float w = static_cast<float>(rng.next_double_in(-1.9, 1.9));
    EXPECT_EQ(plan.project_weight(0, w), quantize_weight(w, spec));
  }
}

TEST(ProjectionPlan, BiasOnlyQuantized) {
  const ProjectionPlan plan(QuantSpec::bits8(), AlphabetSet::man(), 1);
  // 9/64 has an unsupported magnitude (9) as a weight, but biases are
  // not constrained — only snapped to the grid.
  const float b = 9.0f / 64.0f;
  EXPECT_EQ(plan.project_bias(b), b);
  const float w = plan.project_weight(0, b);
  EXPECT_NE(w, b);  // weight gets constrained to 8/64
  EXPECT_FLOAT_EQ(w, 8.0f / 64.0f);
}

TEST(ProjectionPlan, MixedPerLayerSets) {
  const ProjectionPlan plan(QuantSpec::bits8(),
                            {AlphabetSet::man(), AlphabetSet::four()});
  EXPECT_EQ(plan.layer_set(0), AlphabetSet::man());
  EXPECT_EQ(plan.layer_set(1), AlphabetSet::four());
  EXPECT_THROW((void)plan.layer_set(2), std::out_of_range);
  // 9/64: unsupported under {1} (rounds to 8/64) but supported under
  // {1,3,5,7} (9 = 9? no — 9 unsupported under {1,3,5,7} too; use 5).
  const float five = 5.0f / 64.0f;
  EXPECT_FLOAT_EQ(plan.project_weight(1, five), five);
  EXPECT_NE(plan.project_weight(0, five), five);
}

TEST(ProjectionPlan, ProjectNetworkConstrainsEverything) {
  Network net = make_mlp(41);
  const QuantSpec spec = QuantSpec::bits8();
  const ProjectionPlan plan(spec, AlphabetSet::two(), 2);
  plan.project_network(net);

  const WeightConstraint wc(QuartetLayout::bits8(), AlphabetSet::two());
  for (const ParamRef& ref : net.params()) {
    for (float v : ref.value) {
      const auto raw = spec.weight_format.quantize(v);
      if (ref.kind == ParamKind::kWeight) {
        EXPECT_TRUE(wc.is_weight_representable(raw));
      }
      // Both kinds are on the quantization grid.
      EXPECT_EQ(static_cast<float>(spec.weight_format.dequantize(raw)), v);
    }
  }
}

TEST(SgdProjection, LiveWeightsStayConstrainedDuringTraining) {
  Network net = make_mlp(43);
  const auto train = make_blobs(50, 10);

  Sgd::Options opts;
  opts.learning_rate = 0.1;
  opts.projection = ProjectionPlan(QuantSpec::bits8(), AlphabetSet::man(), 2);
  Sgd optimizer(net, opts);

  const WeightConstraint wc(QuartetLayout::bits8(), AlphabetSet::man());
  const QuantSpec spec = QuantSpec::bits8();
  TrainerConfig config;
  config.epochs = 3;
  config.on_epoch = [&](const EpochStats&) {
    for (const ParamRef& ref : net.params()) {
      if (ref.kind != ParamKind::kWeight) continue;
      for (float v : ref.value) {
        EXPECT_TRUE(
            wc.is_weight_representable(spec.weight_format.quantize(v)));
      }
    }
    return true;
  };
  (void)fit(net, optimizer, train, config);
}

TEST(SgdProjection, MastersAccumulateSmallUpdates) {
  // A single weight receiving tiny gradients must eventually move,
  // even though each step is below the quantization threshold — this
  // is why the optimizer keeps float masters.
  Network net;
  net.add<Dense>(1, 1);
  Sgd::Options opts;
  opts.learning_rate = 0.001;  // step = 1e-3 << 1/128 threshold
  opts.momentum = 0.0;
  opts.projection = ProjectionPlan(QuantSpec::bits8(), AlphabetSet::man(), 1);
  Sgd optimizer(net, opts);

  const auto refs = net.params();
  const float initial = refs[0].value[0];
  for (int step = 0; step < 40; ++step) {
    refs[0].grad[0] = -1.0f;  // constant pull upward
    refs[1].grad[0] = 0.0f;
    optimizer.step(1);
  }
  EXPECT_GT(refs[0].value[0], initial);  // 40 × 1e-3 crossed a grid step
}

TEST(Algorithm2, MeetsQualityOnEasyProblem) {
  Network net = make_mlp(47);
  const auto train = make_blobs(120, 21);
  const auto test = make_blobs(60, 22);

  Algorithm2Config config;
  config.quant = QuantSpec::bits8();
  config.quality_constraint = 0.95;
  config.baseline_training.epochs = 15;
  config.retraining.epochs = 8;
  config.retrain_lr = 0.02;

  const Algorithm2Result result = run_algorithm2(net, train, test, config);
  EXPECT_GT(result.baseline_accuracy, 0.9);
  ASSERT_FALSE(result.steps.empty());
  EXPECT_TRUE(result.satisfied);
  // The paper starts the ladder at 1 alphabet; an easy problem should
  // be satisfied immediately.
  EXPECT_EQ(result.steps.front().num_alphabets, 1u);
  EXPECT_EQ(result.chosen_alphabets,
            result.steps.back().num_alphabets);
  for (const auto& step : result.steps) {
    EXPECT_GE(step.accuracy, 0.0);
    EXPECT_LE(step.accuracy, 1.0);
  }
}

TEST(Algorithm2, LadderRespectsConfiguredRungs) {
  Network net = make_mlp(53);
  const auto train = make_blobs(40, 31);
  const auto test = make_blobs(20, 32);

  Algorithm2Config config;
  // Impossible bound: K >= 5·J cannot hold once the baseline learns
  // anything (J >= 0.5 on separable blobs while K <= 1).
  config.quality_constraint = 5.0;
  config.alphabet_ladder = {1, 2};
  config.baseline_training.epochs = 5;
  config.retraining.epochs = 2;

  const Algorithm2Result result = run_algorithm2(net, train, test, config);
  EXPECT_FALSE(result.satisfied);
  ASSERT_EQ(result.steps.size(), 2u);
  EXPECT_EQ(result.steps[0].num_alphabets, 1u);
  EXPECT_EQ(result.steps[1].num_alphabets, 2u);
  EXPECT_EQ(result.chosen_alphabets, 2u);  // falls back to the last rung
}

TEST(RetrainConstrained, ImprovesOverHardProjection) {
  // Constrained retraining should do at least as well as projecting
  // the trained weights with no retraining at all.
  Network net = make_mlp(59);
  const auto train = make_blobs(150, 41);
  const auto test = make_blobs(80, 42);

  Sgd optimizer(net, {.learning_rate = 0.1});
  TrainerConfig base_cfg;
  base_cfg.epochs = 15;
  (void)fit(net, optimizer, train, base_cfg);

  const ProjectionPlan plan(QuantSpec::bits8(), AlphabetSet::man(), 2);

  // Hard projection, no retraining.
  Network projected = make_mlp(59);
  projected.restore_params(net.snapshot_params());
  plan.project_network(projected);
  const double projected_acc = evaluate_accuracy(projected, test);

  // Retraining with the constraint in place.
  TrainerConfig retrain_cfg;
  retrain_cfg.epochs = 8;
  const double retrained_acc =
      retrain_constrained(net, train, test, plan, retrain_cfg, 0.02);

  EXPECT_GE(retrained_acc + 1e-9, projected_acc);
}

}  // namespace
}  // namespace man::nn
