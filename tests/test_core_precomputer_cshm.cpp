// Pre-computer bank structure (paper §III) and CSHM sharing (Fig 3).
#include "man/core/cshm_unit.h"
#include "man/core/precomputer_bank.h"

#include <gtest/gtest.h>

#include "man/util/rng.h"

namespace man::core {
namespace {

TEST(PrecomputerBank, ComputesExactMultiples) {
  const PrecomputerBank bank(AlphabetSet::full());
  for (std::int64_t input : {0LL, 1LL, -3LL, 100LL, -255LL, 4096LL}) {
    const auto multiples = bank.compute(input);
    ASSERT_EQ(multiples.size(), 8u);
    int expected = 1;
    for (std::size_t i = 0; i < multiples.size(); ++i, expected += 2) {
      EXPECT_EQ(multiples[i], expected * input)
          << "alphabet " << expected << " input " << input;
    }
  }
}

// Structural adder counts: {1} needs none, each further alphabet in
// the ladder costs exactly one shift-add given its predecessors.
TEST(PrecomputerBank, LadderAdderCounts) {
  EXPECT_EQ(PrecomputerBank(AlphabetSet::man()).adder_count(), 0);
  EXPECT_EQ(PrecomputerBank(AlphabetSet::two()).adder_count(), 1);
  EXPECT_EQ(PrecomputerBank(AlphabetSet::four()).adder_count(), 3);
  EXPECT_EQ(PrecomputerBank(AlphabetSet::full()).adder_count(), 7);
}

TEST(PrecomputerBank, BusCountEqualsAlphabetCount) {
  // Paper: "the number of communication buses ... is proportional to
  // the number of alphabets".
  for (std::size_t n = 1; n <= 8; ++n) {
    EXPECT_EQ(PrecomputerBank(AlphabetSet::first_n(n)).bus_count(),
              static_cast<int>(n));
  }
}

// Sparse sets that cannot be built in one step from {1} still
// synthesize correctly (via an intermediate helper multiple).
TEST(PrecomputerBank, SparseSetSynthesis) {
  const PrecomputerBank bank(AlphabetSet{1, 11});
  const auto multiples = bank.compute(7);
  ASSERT_EQ(multiples.size(), 2u);
  EXPECT_EQ(multiples[0], 7);
  EXPECT_EQ(multiples[1], 77);
  EXPECT_GE(bank.adder_count(), 1);
}

TEST(PrecomputerBank, AllSingletonSetsSynthesize) {
  for (int a = 1; a <= 15; a += 2) {
    const PrecomputerBank bank(AlphabetSet{a});
    EXPECT_EQ(bank.multiple_of(a, 13), 13 * a) << "alphabet " << a;
  }
}

TEST(PrecomputerBank, MultipleOfRejectsForeignAlphabet) {
  const PrecomputerBank bank(AlphabetSet::two());
  EXPECT_THROW((void)bank.multiple_of(5, 10), std::invalid_argument);
}

TEST(PrecomputerBank, CountsAdderActivations) {
  const PrecomputerBank bank(AlphabetSet::four());
  OpCounts counts;
  (void)bank.compute(42, counts);
  EXPECT_EQ(counts.precomputer_adds, 3u);
}

TEST(CshmUnit, SharesOneBankActivationAcrossLanes) {
  CshmUnit unit(QuartetLayout::bits8(), AlphabetSet::four(), 4);
  const std::vector<int> weights{3, -5, 48, 0};
  const auto products = unit.process(100, weights);
  ASSERT_EQ(products.size(), 4u);
  EXPECT_EQ(products[0], 300);
  EXPECT_EQ(products[1], -500);
  EXPECT_EQ(products[2], 4800);
  EXPECT_EQ(products[3], 0);
  // One input processed => exactly one bank activation (3 adders).
  EXPECT_EQ(unit.stats().inputs_processed, 1u);
  EXPECT_EQ(unit.stats().products_computed, 4u);
  EXPECT_EQ(unit.stats().ops.precomputer_adds, 3u);
}

TEST(CshmUnit, RejectsMoreWeightsThanLanes) {
  CshmUnit unit(QuartetLayout::bits8(), AlphabetSet::two(), 2);
  const std::vector<int> weights{1, 2, 3};
  EXPECT_THROW((void)unit.process(5, weights), std::invalid_argument);
}

TEST(CshmUnit, ProcessColumnHandlesArbitraryWeightCounts) {
  CshmUnit unit(QuartetLayout::bits8(), AlphabetSet::two(), 4);
  man::util::Rng rng(3);
  const WeightConstraint wc(QuartetLayout::bits8(), AlphabetSet::two());
  std::vector<int> weights;
  for (int i = 0; i < 10; ++i) {
    const auto& rep = wc.representable();
    const int mag = rep[static_cast<std::size_t>(
        rng.next_below(rep.size()))];
    weights.push_back(rng.next_bool() ? mag : -mag);
  }
  const auto products = unit.process_column(37, weights);
  ASSERT_EQ(products.size(), weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_EQ(products[i], static_cast<std::int64_t>(weights[i]) * 37);
  }
  EXPECT_EQ(unit.stats().inputs_processed, 1u);
  EXPECT_EQ(unit.stats().products_computed, 10u);
}

TEST(CshmUnit, StatsAccumulateAndReset) {
  CshmUnit unit(QuartetLayout::bits8(), AlphabetSet::man(), 4);
  const std::vector<int> weights{1, 2};
  (void)unit.process(5, weights);
  (void)unit.process(6, weights);
  EXPECT_EQ(unit.stats().inputs_processed, 2u);
  EXPECT_EQ(unit.stats().products_computed, 4u);
  unit.reset_stats();
  EXPECT_EQ(unit.stats().inputs_processed, 0u);
  EXPECT_EQ(unit.stats().products_computed, 0u);
}

TEST(CshmUnit, RejectsBadLaneCount) {
  EXPECT_THROW(CshmUnit(QuartetLayout::bits8(), AlphabetSet::man(), 0),
               std::invalid_argument);
  EXPECT_THROW(CshmUnit(QuartetLayout::bits8(), AlphabetSet::man(), 65),
               std::invalid_argument);
}

}  // namespace
}  // namespace man::core
