// Pre-computer bank structure (paper §III) and CSHM sharing (Fig 3).
#include "man/core/cshm_unit.h"
#include "man/core/precomputer_bank.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "man/util/rng.h"

namespace man::core {
namespace {

TEST(PrecomputerBank, ComputesExactMultiples) {
  const PrecomputerBank bank(AlphabetSet::full());
  for (std::int64_t input : {0LL, 1LL, -3LL, 100LL, -255LL, 4096LL}) {
    const auto multiples = bank.compute(input);
    ASSERT_EQ(multiples.size(), 8u);
    int expected = 1;
    for (std::size_t i = 0; i < multiples.size(); ++i, expected += 2) {
      EXPECT_EQ(multiples[i], expected * input)
          << "alphabet " << expected << " input " << input;
    }
  }
}

// Structural adder counts: {1} needs none, each further alphabet in
// the ladder costs exactly one shift-add given its predecessors.
TEST(PrecomputerBank, LadderAdderCounts) {
  EXPECT_EQ(PrecomputerBank(AlphabetSet::man()).adder_count(), 0);
  EXPECT_EQ(PrecomputerBank(AlphabetSet::two()).adder_count(), 1);
  EXPECT_EQ(PrecomputerBank(AlphabetSet::four()).adder_count(), 3);
  EXPECT_EQ(PrecomputerBank(AlphabetSet::full()).adder_count(), 7);
}

TEST(PrecomputerBank, BusCountEqualsAlphabetCount) {
  // Paper: "the number of communication buses ... is proportional to
  // the number of alphabets".
  for (std::size_t n = 1; n <= 8; ++n) {
    EXPECT_EQ(PrecomputerBank(AlphabetSet::first_n(n)).bus_count(),
              static_cast<int>(n));
  }
}

// Sparse sets that cannot be built in one step from {1} still
// synthesize correctly (via an intermediate helper multiple).
TEST(PrecomputerBank, SparseSetSynthesis) {
  const PrecomputerBank bank(AlphabetSet{1, 11});
  const auto multiples = bank.compute(7);
  ASSERT_EQ(multiples.size(), 2u);
  EXPECT_EQ(multiples[0], 7);
  EXPECT_EQ(multiples[1], 77);
  EXPECT_GE(bank.adder_count(), 1);
}

TEST(PrecomputerBank, AllSingletonSetsSynthesize) {
  for (int a = 1; a <= 15; a += 2) {
    const PrecomputerBank bank(AlphabetSet{a});
    EXPECT_EQ(bank.multiple_of(a, 13), 13 * a) << "alphabet " << a;
  }
}

TEST(PrecomputerBank, MultipleOfRejectsForeignAlphabet) {
  const PrecomputerBank bank(AlphabetSet::two());
  EXPECT_THROW((void)bank.multiple_of(5, 10), std::invalid_argument);
}

TEST(PrecomputerBank, CountsAdderActivations) {
  const PrecomputerBank bank(AlphabetSet::four());
  OpCounts counts;
  (void)bank.compute(42, counts);
  EXPECT_EQ(counts.precomputer_adds, 3u);
}

// --- PrecomputerCache: flat direct-mapped window + hash fallback ---

TEST(PrecomputerCacheFlat, InWindowLookupsMatchBankWithoutHashEntries) {
  const PrecomputerBank bank(AlphabetSet::four());
  PrecomputerCache cache(bank);
  cache.configure_range(-255, 255);
  EXPECT_TRUE(cache.has_range());
  EXPECT_EQ(cache.range_min(), -255);
  EXPECT_EQ(cache.range_max(), 255);

  OpCounts counts;
  for (int round = 0; round < 2; ++round) {
    for (std::int64_t input = -255; input <= 255; ++input) {
      const std::int64_t* row = cache.lookup(input, counts);
      const auto expected = bank.compute(input);
      for (std::size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(row[i], expected[i]) << "input " << input;
      }
    }
  }
  EXPECT_EQ(cache.entries(), 511u);
  EXPECT_EQ(cache.hash_entries(), 0u);  // no lookup touched the hash
  EXPECT_EQ(cache.misses(), 511u);
  EXPECT_EQ(cache.hits(), 511u);
  // Structural adds charged once per distinct value.
  EXPECT_EQ(counts.precomputer_adds,
            511u * static_cast<std::uint64_t>(bank.adder_count()));
}

TEST(PrecomputerCacheFlat, OutOfWindowInputsTakeTheHashFallback) {
  const PrecomputerBank bank(AlphabetSet::two());
  PrecomputerCache cache(bank);
  cache.configure_range(-10, 10);

  OpCounts counts;
  for (int round = 0; round < 3; ++round) {
    for (std::int64_t input : {-500LL, 11LL, 4096LL, -11LL}) {
      const std::int64_t* row = cache.lookup(input, counts);
      EXPECT_EQ(row[0], input);
      EXPECT_EQ(row[1], 3 * input);
    }
    const std::int64_t* in_window = cache.lookup(7, counts);
    EXPECT_EQ(in_window[1], 21);
  }
  EXPECT_EQ(cache.hash_entries(), 4u);  // the out-of-window values
  EXPECT_EQ(cache.entries(), 5u);       // plus the flat row for 7
  EXPECT_EQ(cache.misses(), 5u);
  EXPECT_EQ(cache.hits(), 10u);
}

TEST(PrecomputerCacheFlat, ResetKeepsTheWindowAndDropsTheMemo) {
  const PrecomputerBank bank(AlphabetSet::four());
  PrecomputerCache cache(bank);
  cache.configure_range(0, 100);
  OpCounts counts;
  (void)cache.lookup(5, counts);
  (void)cache.lookup(5, counts);
  (void)cache.lookup(1000, counts);  // hash fallback
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);

  cache.reset();
  EXPECT_TRUE(cache.has_range());  // window survives reset
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  // Rows refill on demand after the reset.
  const std::int64_t* row = cache.lookup(5, counts);
  EXPECT_EQ(row[0], 5);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PrecomputerCacheFlat, BindDropsWindowAndCounters) {
  const PrecomputerBank four(AlphabetSet::four());
  const PrecomputerBank two(AlphabetSet::two());
  PrecomputerCache cache(four);
  cache.configure_range(-5, 5);
  OpCounts counts;
  (void)cache.lookup(3, counts);
  EXPECT_EQ(cache.misses(), 1u);

  cache.bind(two);  // different alphabet count: window must not leak
  EXPECT_EQ(cache.bank(), &two);
  EXPECT_FALSE(cache.has_range());
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  // Unarmed lookups run on the hash path against the new bank.
  const std::int64_t* row = cache.lookup(3, counts);
  EXPECT_EQ(row[1], 9);
  EXPECT_EQ(cache.hash_entries(), 1u);

  cache.configure_range(-5, 5);
  const std::int64_t* flat_row = cache.lookup(3, counts);
  EXPECT_EQ(flat_row[1], 9);
  EXPECT_EQ(cache.entries(), 2u);  // hash entry + fresh flat row
}

TEST(PrecomputerCacheFlat, EnsureRangeIsIdempotentAndRearms) {
  const PrecomputerBank bank(AlphabetSet::four());
  PrecomputerCache cache(bank);
  cache.ensure_range(-255, 255);
  OpCounts counts;
  (void)cache.lookup(0, counts);
  EXPECT_EQ(cache.misses(), 1u);
  cache.ensure_range(-255, 255);  // no-op: the filled row survives
  (void)cache.lookup(0, counts);
  EXPECT_EQ(cache.hits(), 1u);
  cache.ensure_range(-127, 127);  // different window: re-armed
  (void)cache.lookup(0, counts);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(PrecomputerCacheFlat, RejectsBadWindows) {
  const PrecomputerBank bank(AlphabetSet::four());
  PrecomputerCache unbound;
  EXPECT_THROW(unbound.configure_range(0, 1), std::logic_error);
  PrecomputerCache cache(bank);
  EXPECT_THROW(cache.configure_range(1, 0), std::invalid_argument);
  EXPECT_THROW(
      cache.configure_range(
          0, static_cast<std::int64_t>(PrecomputerCache::kMaxFlatSpan)),
      std::invalid_argument);
  // Extreme inputs against an armed window must not wrap into it.
  cache.configure_range(-10, 10);
  OpCounts counts;
  const std::int64_t big = std::numeric_limits<std::int64_t>::max() / 16;
  const std::int64_t* row = cache.lookup(big, counts);
  EXPECT_EQ(row[0], big);
  EXPECT_EQ(cache.hash_entries(), 1u);
}

TEST(PrecomputerCacheFallback, HashCapSaturatesIntoOverflowScratch) {
  const PrecomputerBank bank(AlphabetSet::two());
  PrecomputerCache cache(bank);
  cache.configure_range(0, 7);  // tiny window; the stream lands outside

  OpCounts counts;
  const auto cap =
      static_cast<std::int64_t>(PrecomputerCache::kMaxHashEntries);
  for (std::int64_t input = 1; input <= cap; ++input) {
    (void)cache.lookup(-input, counts);
  }
  EXPECT_EQ(cache.hash_entries(), PrecomputerCache::kMaxHashEntries);
  EXPECT_EQ(cache.misses(), PrecomputerCache::kMaxHashEntries);

  // Past the cap: values are still served correctly (recomputed into
  // the overflow scratch) but never memoized — every lookup is a miss
  // and the entry count stays pinned at the cap.
  for (int round = 0; round < 3; ++round) {
    const std::int64_t* row = cache.lookup(-(cap + 1), counts);
    EXPECT_EQ(row[0], -(cap + 1));
    EXPECT_EQ(row[1], 3 * -(cap + 1));
  }
  EXPECT_EQ(cache.hash_entries(), PrecomputerCache::kMaxHashEntries);
  EXPECT_EQ(cache.misses(), PrecomputerCache::kMaxHashEntries + 3);
  EXPECT_EQ(cache.hits(), 0u);

  // Pre-cap entries and the flat window still replay from the memo.
  (void)cache.lookup(-1, counts);
  EXPECT_EQ(cache.hits(), 1u);
  (void)cache.lookup(3, counts);
  (void)cache.lookup(3, counts);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.entries(), PrecomputerCache::kMaxHashEntries + 1);
}

TEST(PrecomputerCacheFallback, UnboundLookupThrows) {
  PrecomputerCache cache;
  OpCounts counts;
  EXPECT_THROW((void)cache.lookup(1, counts), std::logic_error);
}

TEST(CshmUnit, SharesOneBankActivationAcrossLanes) {
  CshmUnit unit(QuartetLayout::bits8(), AlphabetSet::four(), 4);
  const std::vector<int> weights{3, -5, 48, 0};
  const auto products = unit.process(100, weights);
  ASSERT_EQ(products.size(), 4u);
  EXPECT_EQ(products[0], 300);
  EXPECT_EQ(products[1], -500);
  EXPECT_EQ(products[2], 4800);
  EXPECT_EQ(products[3], 0);
  // One input processed => exactly one bank activation (3 adders).
  EXPECT_EQ(unit.stats().inputs_processed, 1u);
  EXPECT_EQ(unit.stats().products_computed, 4u);
  EXPECT_EQ(unit.stats().ops.precomputer_adds, 3u);
}

TEST(CshmUnit, RejectsMoreWeightsThanLanes) {
  CshmUnit unit(QuartetLayout::bits8(), AlphabetSet::two(), 2);
  const std::vector<int> weights{1, 2, 3};
  EXPECT_THROW((void)unit.process(5, weights), std::invalid_argument);
}

TEST(CshmUnit, ProcessColumnHandlesArbitraryWeightCounts) {
  CshmUnit unit(QuartetLayout::bits8(), AlphabetSet::two(), 4);
  man::util::Rng rng(3);
  const WeightConstraint wc(QuartetLayout::bits8(), AlphabetSet::two());
  std::vector<int> weights;
  for (int i = 0; i < 10; ++i) {
    const auto& rep = wc.representable();
    const int mag = rep[static_cast<std::size_t>(
        rng.next_below(rep.size()))];
    weights.push_back(rng.next_bool() ? mag : -mag);
  }
  const auto products = unit.process_column(37, weights);
  ASSERT_EQ(products.size(), weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_EQ(products[i], static_cast<std::int64_t>(weights[i]) * 37);
  }
  EXPECT_EQ(unit.stats().inputs_processed, 1u);
  EXPECT_EQ(unit.stats().products_computed, 10u);
}

TEST(CshmUnit, StatsAccumulateAndReset) {
  CshmUnit unit(QuartetLayout::bits8(), AlphabetSet::man(), 4);
  const std::vector<int> weights{1, 2};
  (void)unit.process(5, weights);
  (void)unit.process(6, weights);
  EXPECT_EQ(unit.stats().inputs_processed, 2u);
  EXPECT_EQ(unit.stats().products_computed, 4u);
  unit.reset_stats();
  EXPECT_EQ(unit.stats().inputs_processed, 0u);
  EXPECT_EQ(unit.stats().products_computed, 0u);
}

TEST(CshmUnit, RejectsBadLaneCount) {
  EXPECT_THROW(CshmUnit(QuartetLayout::bits8(), AlphabetSet::man(), 0),
               std::invalid_argument);
  EXPECT_THROW(CshmUnit(QuartetLayout::bits8(), AlphabetSet::man(), 65),
               std::invalid_argument);
}

}  // namespace
}  // namespace man::core
