// Quartet layout and sign/magnitude decomposition (paper Fig 4).
#include "man/core/quartet.h"

#include <gtest/gtest.h>

namespace man::core {
namespace {

TEST(QuartetLayout, EightBitLayout) {
  const QuartetLayout layout = QuartetLayout::bits8();
  EXPECT_EQ(layout.total_bits(), 8);
  EXPECT_EQ(layout.magnitude_bits(), 7);
  EXPECT_EQ(layout.max_magnitude(), 127);
  EXPECT_EQ(layout.num_quartets(), 2);
  EXPECT_EQ(layout.quartet_width(0), 4);  // R
  EXPECT_EQ(layout.quartet_width(1), 3);  // P (sign bit excluded)
  EXPECT_EQ(layout.quartet_shift(0), 0);
  EXPECT_EQ(layout.quartet_shift(1), 4);
}

TEST(QuartetLayout, TwelveBitLayout) {
  const QuartetLayout layout = QuartetLayout::bits12();
  EXPECT_EQ(layout.magnitude_bits(), 11);
  EXPECT_EQ(layout.max_magnitude(), 2047);
  EXPECT_EQ(layout.num_quartets(), 3);
  EXPECT_EQ(layout.quartet_width(0), 4);  // R
  EXPECT_EQ(layout.quartet_width(1), 4);  // Q
  EXPECT_EQ(layout.quartet_width(2), 3);  // P
}

TEST(QuartetLayout, RejectsOutOfRangeBits) {
  EXPECT_THROW(QuartetLayout(3), std::invalid_argument);
  EXPECT_THROW(QuartetLayout(21), std::invalid_argument);
  EXPECT_NO_THROW(QuartetLayout(4));
  EXPECT_NO_THROW(QuartetLayout(20));
}

// Paper Table I: W1 = 01101001₂ = 105 decomposes into P=0110 (6) and
// R=1001 (9) — i.e. 105 = 6·2⁴ + 9.
TEST(QuartetLayout, PaperTableOneDecomposition) {
  const QuartetLayout layout = QuartetLayout::bits8();
  const auto q105 = layout.decompose(105);
  ASSERT_EQ(q105.size(), 2u);
  EXPECT_EQ(q105[0], 9);  // R (LSB)
  EXPECT_EQ(q105[1], 6);  // P
  // W2 = 01000010₂ = 66: R=0010 (2), P=100 (4).
  const auto q66 = layout.decompose(66);
  EXPECT_EQ(q66[0], 2);
  EXPECT_EQ(q66[1], 4);
}

TEST(QuartetLayout, DecomposeComposeRoundTripAllMagnitudes8) {
  const QuartetLayout layout = QuartetLayout::bits8();
  for (int mag = 0; mag <= layout.max_magnitude(); ++mag) {
    EXPECT_EQ(layout.compose(layout.decompose(mag)), mag);
  }
}

TEST(QuartetLayout, DecomposeComposeRoundTripAllMagnitudes12) {
  const QuartetLayout layout = QuartetLayout::bits12();
  for (int mag = 0; mag <= layout.max_magnitude(); ++mag) {
    EXPECT_EQ(layout.compose(layout.decompose(mag)), mag);
  }
}

TEST(QuartetLayout, DecomposeRejectsOutOfRange) {
  const QuartetLayout layout = QuartetLayout::bits8();
  EXPECT_THROW((void)layout.decompose(-1), std::out_of_range);
  EXPECT_THROW((void)layout.decompose(128), std::out_of_range);
}

TEST(QuartetLayout, ComposeRejectsBadShapes) {
  const QuartetLayout layout = QuartetLayout::bits8();
  EXPECT_THROW((void)layout.compose({1}), std::invalid_argument);
  EXPECT_THROW((void)layout.compose({1, 8}), std::out_of_range);  // P > 7
}

TEST(SignMagnitude, RoundTripsSymmetricRange) {
  const QuartetLayout layout = QuartetLayout::bits8();
  for (int w = -127; w <= 127; ++w) {
    const SignMagnitude sm = to_sign_magnitude(w, layout);
    EXPECT_EQ(sm.magnitude, w < 0 ? -w : w);
    EXPECT_EQ(sm.negative, w < 0);
    EXPECT_EQ(from_sign_magnitude(sm), w);
  }
}

TEST(SignMagnitude, RejectsAsymmetricMinimum) {
  const QuartetLayout layout = QuartetLayout::bits8();
  // -128's magnitude does not fit in 7 bits — excluded by design.
  EXPECT_THROW((void)to_sign_magnitude(-128, layout), std::out_of_range);
  EXPECT_THROW((void)to_sign_magnitude(128, layout), std::out_of_range);
}

// Property sweep: widths 4..20 produce consistent layouts.
class LayoutSweep : public ::testing::TestWithParam<int> {};

TEST_P(LayoutSweep, WidthsSumToMagnitudeBits) {
  const QuartetLayout layout(GetParam());
  int sum = 0;
  for (int q = 0; q < layout.num_quartets(); ++q) {
    sum += layout.quartet_width(q);
    if (q < layout.num_quartets() - 1) {
      EXPECT_EQ(layout.quartet_width(q), 4);
    }
  }
  EXPECT_EQ(sum, layout.magnitude_bits());
  EXPECT_EQ(layout.max_magnitude(), (1 << layout.magnitude_bits()) - 1);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, LayoutSweep,
                         ::testing::Range(4, 21));

}  // namespace
}  // namespace man::core
