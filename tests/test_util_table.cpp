// Table rendering used by the benchmark harness.
#include "man/util/table.h"

#include <gtest/gtest.h>

namespace man::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"A", "Beta"});
  t.add_row({"1", "two"});
  t.add_row({"three", "4"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| A     | Beta |"), std::string::npos);
  EXPECT_NE(out.find("| three | 4    |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, PadsShortRows) {
  Table t({"A", "B", "C"});
  t.add_row({"x"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| x"), std::string::npos);
}

TEST(Table, SeparatorRendersRule) {
  Table t({"A"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.to_string();
  // Expect at least 4 horizontal rules: top, header, separator, bottom.
  int rules = 0;
  for (std::size_t pos = 0; (pos = out.find('+', pos)) != std::string::npos;
       ++pos) {
    if (out[pos + 1] == '-' || out[pos + 1] == '=') ++rules;
  }
  EXPECT_GE(rules, 4);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"name", "value"});
  t.add_row({"with,comma", "with\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, CsvSkipsSeparators) {
  Table t({"h"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv, "h\n1\n2\n");
}

TEST(FormatHelpers, Doubles) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(FormatHelpers, Percent) {
  EXPECT_EQ(format_percent(0.3512, 2), "35.12");
  EXPECT_EQ(format_percent(1.0, 0), "100");
}

}  // namespace
}  // namespace man::util
